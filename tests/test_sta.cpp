#include "timing/sta.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "test_helpers.h"

namespace repro::timing {
namespace {

TEST(Sta, ChainDelayIsSumOfGates) {
  const circuit::Netlist nl = test::chain_netlist(8);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const StaResult r = run_sta(tg);
  double expect = 0.0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    expect += tg.gate_delay_ps(static_cast<circuit::GateId>(i));
  }
  EXPECT_NEAR(r.circuit_delay, expect, 1e-9);
}

TEST(Sta, CriticalPathEndsAtWorstOutput) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const StaResult r = run_sta(tg);
  ASSERT_FALSE(r.critical_path.empty());
  EXPECT_EQ(nl.gate(r.critical_path.front()).type, circuit::GateType::kInput);
  EXPECT_EQ(nl.gate(r.critical_path.back()).type, circuit::GateType::kOutput);
  EXPECT_NEAR(path_delay_ps(tg, r.critical_path), r.circuit_delay, 1e-9);
}

TEST(Sta, SlackZeroOnCriticalPathAtTightConstraint) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const StaResult r = run_sta(tg);  // t_constraint = circuit delay
  for (circuit::GateId id : r.critical_path) {
    EXPECT_NEAR(r.slack[static_cast<std::size_t>(id)], 0.0, 1e-9);
  }
}

TEST(Sta, SlacksNonNegativeAtTightConstraint) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const StaResult r = run_sta(tg);
  for (std::size_t i = 0; i < nl.size(); ++i) {
    if (!nl.gate(static_cast<circuit::GateId>(i)).fanout.empty() ||
        nl.gate(static_cast<circuit::GateId>(i)).type ==
            circuit::GateType::kOutput) {
      EXPECT_GT(r.slack[i], -1e-9);
    }
  }
}

TEST(Sta, RelaxedConstraintAddsUniformSlack) {
  const circuit::Netlist nl = test::chain_netlist(5);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const StaResult tight = run_sta(tg);
  const StaResult relaxed = run_sta(tg, tight.circuit_delay + 100.0);
  for (std::size_t i = 0; i < nl.size(); ++i) {
    EXPECT_NEAR(relaxed.slack[i], tight.slack[i] + 100.0, 1e-9);
  }
}

TEST(Sta, ArrivalMonotoneAlongEdges) {
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const StaResult r = run_sta(tg);
  for (const circuit::Gate& g : nl.gates()) {
    const auto gid = *nl.find(g.name);
    for (circuit::GateId d : g.fanin) {
      EXPECT_GE(r.arrival[static_cast<std::size_t>(gid)],
                r.arrival[static_cast<std::size_t>(d)] - 1e-12);
    }
  }
}

TEST(Sta, PathDelayHelperMatchesManualSum) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  std::vector<circuit::GateId> p{*nl.find("pi1"), *nl.find("G1"),
                                 *nl.find("G3")};
  EXPECT_NEAR(path_delay_ps(tg, p),
              tg.gate_delay_ps(*nl.find("G1")) +
                  tg.gate_delay_ps(*nl.find("G3")),
              1e-12);
}

}  // namespace
}  // namespace repro::timing
