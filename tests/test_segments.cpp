#include "timing/segments.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <utility>

#include "circuit/generator.h"
#include "test_helpers.h"
#include "timing/sta.h"

namespace repro::timing {
namespace {

std::vector<Path> all_paths(const TimingGraph& tg) {
  return enumerate_worst_paths(tg, {.max_paths = 100000});
}

TEST(Segments, Figure1HasFourSegments) {
  // The union of the four Figure-1 paths has branch points at the launch
  // gates and G5, giving segments: pi1..G5, pi2..G5, G5-G6-G8-po1 split at
  // G5... concretely: two input trunks into G5, and the two output trunks
  // out of G5 (each one chain), i.e. 4 segments.
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = all_paths(tg);
  ASSERT_EQ(paths.size(), 4u);
  const SegmentDecomposition dec = extract_segments(nl, paths);
  EXPECT_EQ(dec.segments.size(), 4u);
}

TEST(Segments, ChainIsSingleSegment) {
  const circuit::Netlist nl = test::chain_netlist(10);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const SegmentDecomposition dec = extract_segments(nl, all_paths(tg));
  EXPECT_EQ(dec.segments.size(), 1u);
  EXPECT_EQ(dec.path_segments[0].size(), 1u);
}

TEST(Segments, DiamondSegmentsPerBranch) {
  const int width = 5;
  const circuit::Netlist nl = test::diamond_netlist(width);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const SegmentDecomposition dec = extract_segments(nl, all_paths(tg));
  // One head (in..fork), `width` middle branches, one tail (join..out).
  EXPECT_EQ(dec.segments.size(), static_cast<std::size_t>(width) + 2u);
}

TEST(Segments, PathDelayEqualsSegmentSum) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 300});
  const SegmentDecomposition dec = extract_segments(nl, paths);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    double via_segments = 0.0;
    for (int s : dec.path_segments[p]) {
      via_segments += segment_delay_ps(tg, dec.segments[static_cast<std::size_t>(s)]);
    }
    EXPECT_NEAR(via_segments, path_delay_ps(tg, paths[p].gates), 1e-9);
  }
}

TEST(Segments, IncidenceMatchesPathSegments) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 200});
  const SegmentDecomposition dec = extract_segments(nl, paths);
  for (std::size_t p = 0; p < paths.size(); ++p) {
    double row_sum = 0.0;
    for (std::size_t s = 0; s < dec.segments.size(); ++s) {
      row_sum += dec.incidence(p, s);
      const bool in_list =
          std::find(dec.path_segments[p].begin(), dec.path_segments[p].end(),
                    static_cast<int>(s)) != dec.path_segments[p].end();
      EXPECT_EQ(dec.incidence(p, s) != 0.0, in_list);
    }
    EXPECT_DOUBLE_EQ(row_sum,
                     static_cast<double>(dec.path_segments[p].size()));
  }
}

TEST(Segments, SegmentsPartitionPathEdges) {
  // Every edge of every path belongs to exactly one segment, and segment
  // interiors never appear as segment endpoints of other segments.
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 150});
  const SegmentDecomposition dec = extract_segments(nl, paths);
  std::size_t edges_in_segments = 0;
  for (const Segment& s : dec.segments) {
    ASSERT_GE(s.gates.size(), 2u);
    edges_in_segments += s.gates.size() - 1;
  }
  // Count distinct path edges.
  std::set<std::pair<circuit::GateId, circuit::GateId>> uniq;
  for (const Path& p : paths) {
    for (std::size_t i = 0; i + 1 < p.gates.size(); ++i) {
      uniq.insert({p.gates[i], p.gates[i + 1]});
    }
  }
  EXPECT_EQ(edges_in_segments, uniq.size());
}

TEST(Segments, SegmentCountAtMostEdgeCount) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 400});
  const SegmentDecomposition dec = extract_segments(nl, paths);
  // Lemma 1 context: n_S is a lumped representation of the edges, and the
  // number of segments is typically far below the path count for shared
  // topologies.
  EXPECT_LT(dec.segments.size(), 2 * paths.size());
}

TEST(Segments, CoveredGateCount) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = all_paths(tg);
  EXPECT_EQ(covered_gate_count(nl, paths), 9u);
  // A single path covers only its own gates.
  EXPECT_EQ(covered_gate_count(nl, {paths.front()}), 5u);
}

TEST(Segments, EmptyPathSetYieldsNoSegments) {
  const circuit::Netlist nl = test::figure1_netlist();
  const SegmentDecomposition dec = extract_segments(nl, {});
  EXPECT_EQ(dec.segments.size(), 0u);
  EXPECT_EQ(dec.incidence.rows(), 0u);
}

}  // namespace
}  // namespace repro::timing
