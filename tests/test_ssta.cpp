#include "timing/ssta.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/benchmarks.h"
#include "test_helpers.h"
#include "timing/sta.h"
#include "util/rng.h"
#include "util/stats.h"

namespace repro::timing {
namespace {

TEST(ClarkMax, DominantInputPassesThrough) {
  CanonicalForm a;
  a.mean = 100.0;
  a.coeffs = {1.0, 0.0};
  CanonicalForm b;
  b.mean = 10.0;
  b.coeffs = {0.0, 1.0};
  const CanonicalForm m = clark_max(a, b);
  // A dominates by ~64 sigma: the max is A.
  EXPECT_NEAR(m.mean, 100.0, 1e-6);
  EXPECT_NEAR(m.coeffs[0], 1.0, 1e-6);
  EXPECT_NEAR(m.coeffs[1], 0.0, 1e-6);
}

TEST(ClarkMax, IdenticalInputsUnchanged) {
  CanonicalForm a;
  a.mean = 50.0;
  a.coeffs = {2.0, 3.0};
  const CanonicalForm m = clark_max(a, a);
  EXPECT_DOUBLE_EQ(m.mean, 50.0);
  EXPECT_DOUBLE_EQ(m.variance(), a.variance());
}

TEST(ClarkMax, MomentsMatchMonteCarlo) {
  CanonicalForm a;
  a.mean = 10.0;
  a.coeffs = {3.0, 1.0, 0.0};
  CanonicalForm b;
  b.mean = 11.0;
  b.coeffs = {1.5, 0.0, 2.5};  // correlated with a through x0
  const CanonicalForm m = clark_max(a, b);

  util::Rng rng(5);
  util::RunningStats rs;
  for (int s = 0; s < 200000; ++s) {
    const double x0 = rng.normal(), x1 = rng.normal(), x2 = rng.normal();
    const double va = 10.0 + 3.0 * x0 + 1.0 * x1;
    const double vb = 11.0 + 1.5 * x0 + 2.5 * x2;
    rs.add(std::max(va, vb));
  }
  // Clark's mean/variance are exact for the max of two joint Gaussians.
  EXPECT_NEAR(m.mean, rs.mean(), 0.03);
  EXPECT_NEAR(m.sigma(), rs.stddev(), 0.03);
}

TEST(ClarkMax, VarianceConserved) {
  CanonicalForm a;
  a.mean = 5.0;
  a.coeffs = {1.0, 2.0};
  a.extra_var = 0.5;
  CanonicalForm b;
  b.mean = 5.5;
  b.coeffs = {2.0, -1.0};
  b.extra_var = 0.25;
  const CanonicalForm m = clark_max(a, b);
  // The canonical form's total variance must equal Clark's matched moment:
  // recompute it from the definition.
  const double va = a.variance(), vb = b.variance();
  const double cov = a.covariance(b);
  const double theta = std::sqrt(va + vb - 2.0 * cov);
  const double alpha = (a.mean - b.mean) / theta;
  const double t = util::normal_cdf(alpha);
  const double phi = std::exp(-0.5 * alpha * alpha) / std::sqrt(2.0 * M_PI);
  const double mean = a.mean * t + b.mean * (1 - t) + theta * phi;
  const double e2 = (a.mean * a.mean + va) * t + (b.mean * b.mean + vb) * (1 - t) +
                    (a.mean + b.mean) * theta * phi;
  EXPECT_NEAR(m.variance(), e2 - mean * mean, 1e-9);
}

TEST(Ssta, ChainMatchesAnalyticSum) {
  // A chain has no max: the circuit delay form is the exact sum of gate
  // forms, so mean == nominal STA delay and variance == correlated sum.
  circuit::Netlist nl = test::chain_netlist(10);
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const variation::SpatialModel spatial(3);
  const SstaResult r = run_ssta(tg, spatial);
  const StaResult sta = run_sta(tg);
  EXPECT_NEAR(r.circuit_delay.mean, sta.circuit_delay, 1e-9);
  EXPECT_DOUBLE_EQ(r.circuit_delay.extra_var, 0.0);  // no max was taken
  EXPECT_GT(r.circuit_delay.sigma(), 0.0);
}

TEST(Ssta, MeanAtLeastNominal) {
  // E[max] >= max of means: the SSTA mean is above the deterministic delay.
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const variation::SpatialModel spatial(3);
  const SstaResult r = run_ssta(tg, spatial);
  const StaResult sta = run_sta(tg);
  EXPECT_GE(r.circuit_delay.mean, sta.circuit_delay - 1e-9);
}

TEST(Ssta, YieldMatchesMonteCarlo) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const variation::SpatialModel spatial(3);
  const SstaResult r = run_ssta(tg, spatial);
  const StaResult sta = run_sta(tg);
  // Compare the Gaussian yield against the exact-sampling estimator used by
  // the pipeline at a few constraint points.
  for (double factor : {1.0, 1.03, 1.08}) {
    const double t_cons = sta.circuit_delay * factor;
    const double mc = core::estimate_circuit_yield(tg, spatial, t_cons, 4000,
                                                   1234);
    EXPECT_NEAR(r.yield(t_cons), mc, 0.06)
        << "factor " << factor << " ssta " << r.yield(t_cons) << " mc " << mc;
  }
}

TEST(Ssta, CaptureStatsPerOutput) {
  circuit::Netlist nl = test::figure1_netlist();
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const variation::SpatialModel spatial(3);
  const SstaResult r = run_ssta(tg, spatial);
  EXPECT_EQ(r.capture_stats.size(), nl.outputs().size());
  for (const auto& st : r.capture_stats) {
    EXPECT_GT(st.mean, 0.0);
    EXPECT_GT(st.sigma, 0.0);
  }
}

TEST(Ssta, RandomScaleIncreasesSigma) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const variation::SpatialModel spatial(3);
  const SstaResult base = run_ssta(tg, spatial, 1.0);
  const SstaResult scaled = run_ssta(tg, spatial, 3.0);
  EXPECT_GT(scaled.circuit_delay.sigma(), base.circuit_delay.sigma());
}

}  // namespace
}  // namespace repro::timing
