#include "linalg/qr.h"

#include <gtest/gtest.h>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

TEST(Qr, ThinFactorsReconstruct) {
  const Matrix a = random_matrix(12, 5, 1);
  const QrFactors f = qr_factor(a);
  const Matrix q = qr_thin_q(f);
  const Matrix r = qr_r(f);
  EXPECT_LT(max_abs_diff(multiply(q, r), a), 1e-10);
}

TEST(Qr, QHasOrthonormalColumns) {
  const Matrix a = random_matrix(20, 7, 2);
  const Matrix q = qr_thin_q(qr_factor(a));
  const Matrix qtq = multiply_at(q, q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(7)), 1e-11);
}

TEST(Qr, RIsUpperTriangular) {
  const Matrix r = qr_r(qr_factor(random_matrix(9, 6, 3)));
  for (std::size_t i = 0; i < r.rows(); ++i) {
    for (std::size_t j = 0; j < i && j < r.cols(); ++j) {
      EXPECT_DOUBLE_EQ(r(i, j), 0.0);
    }
  }
}

TEST(Qr, ApplyQtThenQIsIdentity) {
  const Matrix a = random_matrix(10, 4, 4);
  const QrFactors f = qr_factor(a);
  util::Rng rng(44);
  Vector v(10), orig(10);
  for (std::size_t i = 0; i < 10; ++i) orig[i] = v[i] = rng.normal();
  qr_apply_qt(f, v);
  qr_apply_q(f, v);
  for (std::size_t i = 0; i < 10; ++i) EXPECT_NEAR(v[i], orig[i], 1e-12);
}

TEST(Qr, QtPreservesNorm) {
  const QrFactors f = qr_factor(random_matrix(15, 8, 5));
  util::Rng rng(55);
  Vector v(15);
  for (double& x : v) x = rng.normal();
  const double before = norm2(v);
  qr_apply_qt(f, v);
  EXPECT_NEAR(norm2(v), before, 1e-11);
}

TEST(Qr, LeastSquaresExactOnConsistentSystem) {
  const Matrix a = random_matrix(10, 3, 6);
  Vector x_true{1.5, -2.0, 0.5};
  const Vector b = matvec(a, x_true);
  const Vector x = qr_least_squares(a, b);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(x[i], x_true[i], 1e-11);
}

TEST(Qr, LeastSquaresResidualOrthogonalToColumns) {
  const Matrix a = random_matrix(25, 4, 7);
  util::Rng rng(77);
  Vector b(25);
  for (double& v : b) v = rng.normal();
  const Vector x = qr_least_squares(a, b);
  Vector resid = matvec(a, x);
  for (std::size_t i = 0; i < b.size(); ++i) resid[i] -= b[i];
  const Vector atr = matvec_transposed(a, resid);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Qr, LeastSquaresUnderdeterminedThrows) {
  EXPECT_THROW((void)qr_least_squares(Matrix(2, 3), Vector{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Qr, LeastSquaresRankDeficientThrows) {
  Matrix a{{1.0, 1.0}, {1.0, 1.0}, {1.0, 1.0}};
  EXPECT_THROW((void)qr_least_squares(a, Vector{1.0, 2.0, 3.0}),
               std::runtime_error);
}

TEST(Qr, WideMatrixFactorization) {
  const Matrix a = random_matrix(4, 9, 8);
  const QrFactors f = qr_factor(a);
  const Matrix q = qr_thin_q(f);
  const Matrix r = qr_r(f);
  EXPECT_EQ(q.cols(), 4u);
  EXPECT_EQ(r.rows(), 4u);
  EXPECT_LT(max_abs_diff(multiply(q, r), a), 1e-11);
}

}  // namespace
}  // namespace repro::linalg
