#include "linalg/svd.h"

#include <gtest/gtest.h>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

void expect_orthonormal_columns(const Matrix& q, double tol) {
  const Matrix qtq = multiply_at(q, q);
  EXPECT_LT(max_abs_diff(qtq, Matrix::identity(q.cols())), tol);
}

TEST(Svd, DiagonalMatrixKnownValues) {
  Vector d{3.0, 1.0, 2.0};
  const SvdResult f = svd(Matrix::diagonal(d));
  ASSERT_TRUE(f.converged);
  EXPECT_NEAR(f.s[0], 3.0, 1e-12);
  EXPECT_NEAR(f.s[1], 2.0, 1e-12);
  EXPECT_NEAR(f.s[2], 1.0, 1e-12);
}

TEST(Svd, SingularValuesSortedNonIncreasing) {
  const SvdResult f = svd(random_matrix(25, 12, 1));
  for (std::size_t i = 1; i < f.s.size(); ++i) {
    EXPECT_GE(f.s[i - 1], f.s[i]);
  }
}

TEST(Svd, AllSingularValuesNonNegative) {
  const SvdResult f = svd(random_matrix(10, 10, 2));
  for (double s : f.s) EXPECT_GE(s, 0.0);
}

TEST(Svd, ReconstructionTall) {
  const Matrix a = random_matrix(30, 9, 3);
  const SvdResult f = svd(a);
  ASSERT_TRUE(f.converged);
  EXPECT_LT(max_abs_diff(svd_reconstruct(f), a), 1e-10);
}

TEST(Svd, ReconstructionWide) {
  const Matrix a = random_matrix(7, 23, 4);
  const SvdResult f = svd(a);
  ASSERT_TRUE(f.converged);
  EXPECT_EQ(f.u.rows(), 7u);
  EXPECT_EQ(f.u.cols(), 7u);
  EXPECT_EQ(f.v.rows(), 23u);
  EXPECT_LT(max_abs_diff(svd_reconstruct(f), a), 1e-10);
}

TEST(Svd, ReconstructionSquare) {
  const Matrix a = random_matrix(16, 16, 5);
  const SvdResult f = svd(a);
  EXPECT_LT(max_abs_diff(svd_reconstruct(f), a), 1e-10);
}

TEST(Svd, OrthonormalFactors) {
  const Matrix a = random_matrix(18, 11, 6);
  const SvdResult f = svd(a);
  expect_orthonormal_columns(f.u, 1e-11);
  expect_orthonormal_columns(f.v, 1e-11);
}

TEST(Svd, RankOfProductMatrix) {
  const Matrix a = multiply(random_matrix(20, 4, 7), random_matrix(4, 15, 8));
  const SvdResult f = svd(a);
  EXPECT_EQ(svd_rank(f, 20, 15), 4u);
}

TEST(Svd, RankZeroMatrix) {
  const SvdResult f = svd(Matrix(5, 3));
  EXPECT_EQ(svd_rank(f, 5, 3), 0u);
}

TEST(Svd, SingularValuesMatchEigenvaluesOfGram) {
  const Matrix a = random_matrix(12, 8, 9);
  const SvdResult f = svd(a);
  // Frobenius norm identity: sum s_i^2 = ||A||_F^2.
  double ss = 0.0;
  for (double s : f.s) ss += s * s;
  const double fro = a.frobenius_norm();
  EXPECT_NEAR(ss, fro * fro, 1e-9 * fro * fro);
}

TEST(Svd, OperatorNormViaMatvec) {
  const Matrix a = random_matrix(14, 10, 10);
  const SvdResult f = svd(a);
  // ||A v_0|| == s_0 and A v_0 == s_0 u_0.
  const Vector v0 = f.v.column(0);
  const Vector av = matvec(a, v0);
  EXPECT_NEAR(norm2(av), f.s[0], 1e-10);
  for (std::size_t i = 0; i < av.size(); ++i) {
    EXPECT_NEAR(av[i], f.s[0] * f.u(i, 0), 1e-9);
  }
}

TEST(Svd, ValuesOnlyModeMatchesFull) {
  const Matrix a = random_matrix(20, 13, 11);
  const SvdResult full = svd(a);
  const SvdResult vals = svd(a, /*want_uv=*/false);
  ASSERT_EQ(full.s.size(), vals.s.size());
  for (std::size_t i = 0; i < full.s.size(); ++i) {
    EXPECT_NEAR(full.s[i], vals.s[i], 1e-10 * (1.0 + full.s[0]));
  }
  EXPECT_TRUE(vals.u.empty());
}

TEST(Svd, HugeDynamicRange) {
  Matrix a = Matrix::diagonal(Vector{1e8, 1.0, 1e-8});
  const SvdResult f = svd(a);
  EXPECT_NEAR(f.s[0], 1e8, 1e-4);
  EXPECT_NEAR(f.s[1], 1.0, 1e-10);
  EXPECT_NEAR(f.s[2], 1e-8, 1e-16);
}

TEST(Svd, SingleColumnAndSingleRow) {
  Matrix col(4, 1);
  col(0, 0) = 3.0;
  col(1, 0) = 4.0;
  const SvdResult fc = svd(col);
  EXPECT_NEAR(fc.s[0], 5.0, 1e-12);

  Matrix row(1, 4);
  row(0, 2) = -2.0;
  const SvdResult fr = svd(row);
  EXPECT_NEAR(fr.s[0], 2.0, 1e-12);
}

}  // namespace
}  // namespace repro::linalg
