#include "core/error_model.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "core/predictor.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Pre-rewrite per-path reference: gather w_i, one forward solve per
// remaining path.  The batched panel evaluator must reproduce it.
SelectionErrors reference_selection_errors(const linalg::Matrix& gram,
                                           const std::vector<int>& rep,
                                           double t_cons, double kappa) {
  const std::size_t n = gram.rows();
  SelectionErrors out;
  std::vector<char> is_rep(n, 0);
  for (int i : rep) is_rep[static_cast<std::size_t>(i)] = 1;
  for (std::size_t i = 0; i < n; ++i) {
    if (!is_rep[i]) out.remaining.push_back(static_cast<int>(i));
  }
  const std::size_t r = rep.size();
  linalg::Matrix s(r, r);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < r; ++j) {
      s(i, j) = gram(static_cast<std::size_t>(rep[i]),
                     static_cast<std::size_t>(rep[j]));
    }
  }
  const linalg::RegularizedChol rc = linalg::chol_factor_regularized(s);
  out.sigma.resize(out.remaining.size());
  out.per_path_eps.resize(out.remaining.size());
  for (std::size_t k = 0; k < out.remaining.size(); ++k) {
    const auto i = static_cast<std::size_t>(out.remaining[k]);
    linalg::Vector w(r);
    for (std::size_t j = 0; j < r; ++j) {
      w[j] = gram(i, static_cast<std::size_t>(rep[j]));
    }
    const linalg::Vector y = linalg::chol_forward(rc.factors, w);
    double var = gram(i, i);
    for (double v : y) var -= v * v;
    var = std::max(var, 0.0);
    out.sigma[k] = std::sqrt(var);
    const double wc = kappa * out.sigma[k];
    out.per_path_eps[k] = wc / t_cons;
    out.max_wc = std::max(out.max_wc, wc);
  }
  out.eps_r = out.max_wc / t_cons;
  return out;
}

// abs_tol covers sigmas that cancel to ~0: sigma = sqrt(w_ii - ||y||^2) is
// then limited by catastrophic cancellation to O(sqrt(eps * w_ii)), so once
// the batched path and the reference stop being the bit-identical scalar
// recurrence (SIMD tiers reassociate; DESIGN.md §11) they can only agree to
// that envelope.  Full-rank sigmas are O(1) and keep the tight relative
// bound.
void expect_matches_reference(const linalg::Matrix& w,
                              const std::vector<int>& rep,
                              double abs_tol = 0.0) {
  const double t_cons = 750.0, kappa = 3.0;
  const SelectionErrors got =
      selection_errors_from_gram(w, rep, t_cons, kappa);
  const SelectionErrors ref = reference_selection_errors(w, rep, t_cons, kappa);
  ASSERT_EQ(got.remaining, ref.remaining) << "r = " << rep.size();
  for (std::size_t k = 0; k < ref.sigma.size(); ++k) {
    EXPECT_NEAR(got.sigma[k], ref.sigma[k],
                1e-10 * (1.0 + ref.sigma[k]) + abs_tol)
        << "r = " << rep.size() << ", path slot " << k;
  }
  EXPECT_NEAR(got.max_wc, ref.max_wc,
              1e-10 * (1.0 + ref.max_wc) + kappa * abs_tol);
  EXPECT_NEAR(got.eps_r, ref.eps_r,
              1e-10 * (1.0 + ref.eps_r) + kappa * abs_tol / t_cons);
}

TEST(ErrorModel, GramIdentityMatchesPredictorSigmas) {
  // Var(Delta_i) from the Gram identity must equal ||omega_i|| from the
  // explicitly-built predictor.
  const linalg::Matrix a = random_matrix(12, 18, 1);
  const std::vector<int> rep{0, 3, 7};
  const SelectionErrors se = selection_errors(a, rep, 1000.0, 3.0);
  const LinearPredictor p =
      make_path_predictor(a, linalg::Vector(12, 0.0), rep);
  const linalg::Vector sig = p.error_sigmas();
  ASSERT_EQ(se.sigma.size(), sig.size());
  ASSERT_EQ(se.remaining, p.remaining);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(se.sigma[i], sig[i], 1e-8 * (1.0 + sig[i]));
  }
}

TEST(ErrorModel, ZeroErrorForSpanningSelection) {
  const linalg::Matrix a =
      linalg::multiply(random_matrix(10, 3, 2), random_matrix(3, 14, 3));
  // Rows 0,1,2 of the left factor are generically independent -> rows 0,1,2
  // of A span the row space.
  const SelectionErrors se = selection_errors(a, {0, 1, 2}, 500.0, 3.0);
  EXPECT_NEAR(se.eps_r, 0.0, 1e-7);
}

TEST(ErrorModel, EpsRIsMaxOverRemaining) {
  const linalg::Matrix a = random_matrix(9, 12, 4);
  const SelectionErrors se = selection_errors(a, {0, 1}, 800.0, 3.0);
  double max_eps = 0.0;
  for (double e : se.per_path_eps) max_eps = std::max(max_eps, e);
  EXPECT_NEAR(se.eps_r, max_eps, 1e-12);
  EXPECT_NEAR(se.max_wc, se.eps_r * 800.0, 1e-9);
}

TEST(ErrorModel, KappaScalesLinearly) {
  const linalg::Matrix a = random_matrix(9, 12, 5);
  const SelectionErrors k3 = selection_errors(a, {0, 1}, 800.0, 3.0);
  const SelectionErrors k6 = selection_errors(a, {0, 1}, 800.0, 6.0);
  EXPECT_NEAR(k6.eps_r, 2.0 * k3.eps_r, 1e-12);
}

TEST(ErrorModel, TconsScalesInversely) {
  const linalg::Matrix a = random_matrix(9, 12, 6);
  const SelectionErrors t1 = selection_errors(a, {2, 4}, 400.0, 3.0);
  const SelectionErrors t2 = selection_errors(a, {2, 4}, 800.0, 3.0);
  EXPECT_NEAR(t1.eps_r, 2.0 * t2.eps_r, 1e-12);
}

TEST(ErrorModel, ErrorShrinksWithMoreRepresentatives) {
  const linalg::Matrix a = random_matrix(15, 10, 7);
  const linalg::Matrix w = linalg::gram(a);
  double prev = 1e18;
  for (std::size_t r = 1; r <= 8; ++r) {
    std::vector<int> rep;
    for (std::size_t i = 0; i < r; ++i) rep.push_back(static_cast<int>(i));
    const SelectionErrors se =
        selection_errors_from_gram(w, rep, 1000.0, 3.0);
    // Adding a representative never hurts the remaining paths it contains...
    // For nested prefixes the max error is non-increasing.
    EXPECT_LE(se.eps_r, prev + 1e-9);
    prev = se.eps_r;
  }
}

TEST(ErrorModel, InvalidInputsThrow) {
  const linalg::Matrix a = random_matrix(5, 5, 8);
  EXPECT_THROW((void)selection_errors(a, {0}, 0.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW((void)selection_errors(a, {9}, 100.0, 3.0), std::out_of_range);
}

TEST(ErrorModel, DuplicateRepresentativeThrows) {
  // A repeated index used to be silently collapsed by the is_rep mask,
  // making |rep| lie about the measurement budget.  It must throw now.
  const linalg::Matrix a = random_matrix(6, 8, 10);
  EXPECT_THROW((void)selection_errors(a, {1, 3, 1}, 100.0, 3.0),
               std::invalid_argument);
  const linalg::Matrix w = linalg::gram(a);
  EXPECT_THROW((void)selection_errors_from_gram(w, {2, 2}, 100.0, 3.0),
               std::invalid_argument);
}

TEST(ErrorModel, WorstCaseGaussianHelper) {
  EXPECT_DOUBLE_EQ(worst_case_gaussian(0.0, 2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(worst_case_gaussian(-4.0, 1.0, 3.0), 7.0);
}

TEST(ErrorModel, RemainingExcludesSelection) {
  const linalg::Matrix a = random_matrix(6, 6, 9);
  const SelectionErrors se = selection_errors(a, {1, 3}, 100.0, 3.0);
  EXPECT_EQ(se.remaining, (std::vector<int>{0, 2, 4, 5}));
}

TEST(ErrorModel, BatchedMatchesReferenceForEveryR) {
  // Full-rank random Gram: the panel evaluator must track the per-path
  // reference to 1e-10 relative for every selection size.
  const linalg::Matrix w = linalg::gram(random_matrix(40, 48, 11));
  const linalg::PivotedChol pc = linalg::pivoted_cholesky(w);
  for (std::size_t r = 1; r <= pc.rank; ++r) {
    expect_matches_reference(
        w, std::vector<int>(pc.perm.begin(),
                            pc.perm.begin() + static_cast<std::ptrdiff_t>(r)));
  }
}

TEST(ErrorModel, BatchedMatchesReferenceOnRankDeficientGram) {
  // rank(A) == 4 but selections up to size 7: S = W[rep, rep] goes exactly
  // singular and both paths must agree through the same jitter fallback.
  const linalg::Matrix a =
      linalg::multiply(random_matrix(26, 4, 12), random_matrix(4, 20, 13));
  const linalg::Matrix w = linalg::gram(a);
  // Past the rank every sigma cancels to ~0; diag(W) is O(10) here, so the
  // cancellation envelope sqrt(eps * w_ii) is ~1e-7 (see
  // expect_matches_reference).
  for (std::size_t r = 1; r <= 7; ++r) {
    std::vector<int> rep(r);
    std::iota(rep.begin(), rep.end(), 0);
    expect_matches_reference(w, rep, 1e-6);
  }
}

TEST(ErrorModel, BatchedBitIdenticalAcrossThreadCounts) {
  // n > 512 so the chunked reduction actually splits.
  const linalg::Matrix w = linalg::gram(random_matrix(700, 60, 14));
  std::vector<int> rep(24);
  std::iota(rep.begin(), rep.end(), 0);
  const std::size_t saved_threads = util::thread_count();
  util::set_threads(1);
  const SelectionErrors e1 = selection_errors_from_gram(w, rep, 900.0, 3.0);
  util::set_threads(4);
  const SelectionErrors e4 = selection_errors_from_gram(w, rep, 900.0, 3.0);
  util::set_threads(saved_threads);
  ASSERT_EQ(e1.sigma.size(), e4.sigma.size());
  for (std::size_t k = 0; k < e1.sigma.size(); ++k) {
    EXPECT_EQ(e1.sigma[k], e4.sigma[k]);
    EXPECT_EQ(e1.per_path_eps[k], e4.per_path_eps[k]);
  }
  EXPECT_EQ(e1.max_wc, e4.max_wc);
  EXPECT_EQ(e1.eps_r, e4.eps_r);
}

TEST(ErrorModel, SweepMatchesPerCandidateForEveryPrefix) {
  const linalg::Matrix w = linalg::gram(random_matrix(36, 44, 15));
  const linalg::PivotedChol pc = linalg::pivoted_cholesky(w);
  const std::vector<int> order(
      pc.perm.begin(), pc.perm.begin() + static_cast<std::ptrdiff_t>(pc.rank));
  const SelectionErrorSweep sweep =
      selection_error_sweep(w, order, 750.0, 3.0);
  ASSERT_EQ(sweep.steps, pc.rank);
  for (std::size_t r = 1; r <= pc.rank; ++r) {
    const std::vector<int> rep(
        order.begin(), order.begin() + static_cast<std::ptrdiff_t>(r));
    const SelectionErrors ref = selection_errors_from_gram(w, rep, 750.0, 3.0);
    EXPECT_NEAR(sweep.eps_r[r - 1], ref.eps_r, 1e-10 * (1.0 + ref.eps_r))
        << "prefix r = " << r;
    EXPECT_NEAR(sweep.max_wc[r - 1], ref.max_wc, 1e-10 * (1.0 + ref.max_wc));
  }
}

TEST(ErrorModel, SweepHandlesRankDeficientOrder) {
  // Sweeping past the numerical rank must neither throw nor produce junk:
  // redundant pivots add no elimination column, so the error curve stays
  // finite and (numerically) non-increasing.
  const linalg::Matrix a =
      linalg::multiply(random_matrix(24, 5, 16), random_matrix(5, 18, 17));
  const linalg::Matrix w = linalg::gram(a);
  std::vector<int> order(24);
  std::iota(order.begin(), order.end(), 0);
  const SelectionErrorSweep sweep = selection_error_sweep(w, order, 500.0, 3.0);
  ASSERT_EQ(sweep.steps, 24u);
  double prev = 1e300;
  for (std::size_t k = 0; k < sweep.steps; ++k) {
    EXPECT_TRUE(std::isfinite(sweep.eps_r[k]));
    EXPECT_LE(sweep.eps_r[k], prev + 1e-9);
    prev = sweep.eps_r[k];
  }
  // Beyond rank the remaining residual variance is numerically zero.
  EXPECT_NEAR(sweep.eps_r[sweep.steps - 1], 0.0, 1e-6);
}

TEST(ErrorModel, SweepBitIdenticalAcrossThreadCounts) {
  // n * k must clear the sweep's serial threshold for later steps so the
  // pool genuinely splits the column updates.
  const linalg::Matrix w = linalg::gram(random_matrix(620, 200, 18));
  std::vector<int> order(150);
  std::iota(order.begin(), order.end(), 0);
  const std::size_t saved_threads = util::thread_count();
  util::set_threads(1);
  const SelectionErrorSweep s1 = selection_error_sweep(w, order, 800.0, 3.0);
  util::set_threads(4);
  const SelectionErrorSweep s4 = selection_error_sweep(w, order, 800.0, 3.0);
  util::set_threads(saved_threads);
  ASSERT_EQ(s1.steps, s4.steps);
  for (std::size_t k = 0; k < s1.steps; ++k) {
    EXPECT_EQ(s1.eps_r[k], s4.eps_r[k]) << "step " << k;
    EXPECT_EQ(s1.max_wc[k], s4.max_wc[k]);
  }
}

TEST(ErrorModel, SweepTruncatesAtMaxR) {
  const linalg::Matrix w = linalg::gram(random_matrix(20, 24, 19));
  std::vector<int> order(12);
  std::iota(order.begin(), order.end(), 0);
  const SelectionErrorSweep sweep =
      selection_error_sweep(w, order, 500.0, 3.0, 5);
  EXPECT_EQ(sweep.steps, 5u);
  EXPECT_EQ(sweep.eps_r.size(), 5u);
}

TEST(ErrorModel, SweepInvalidInputsThrow) {
  const linalg::Matrix w = linalg::gram(random_matrix(8, 10, 20));
  EXPECT_THROW((void)selection_error_sweep(w, {0, 1}, 0.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW((void)selection_error_sweep(w, {0, 9}, 100.0, 3.0),
               std::out_of_range);
  EXPECT_THROW((void)selection_error_sweep(w, {3, 3}, 100.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW(
      (void)selection_error_sweep(linalg::Matrix(3, 4), {0}, 100.0, 3.0),
      std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
