#include "core/error_model.h"

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

TEST(ErrorModel, GramIdentityMatchesPredictorSigmas) {
  // Var(Delta_i) from the Gram identity must equal ||omega_i|| from the
  // explicitly-built predictor.
  const linalg::Matrix a = random_matrix(12, 18, 1);
  const std::vector<int> rep{0, 3, 7};
  const SelectionErrors se = selection_errors(a, rep, 1000.0, 3.0);
  const LinearPredictor p =
      make_path_predictor(a, linalg::Vector(12, 0.0), rep);
  const linalg::Vector sig = p.error_sigmas();
  ASSERT_EQ(se.sigma.size(), sig.size());
  ASSERT_EQ(se.remaining, p.remaining);
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(se.sigma[i], sig[i], 1e-8 * (1.0 + sig[i]));
  }
}

TEST(ErrorModel, ZeroErrorForSpanningSelection) {
  const linalg::Matrix a =
      linalg::multiply(random_matrix(10, 3, 2), random_matrix(3, 14, 3));
  // Rows 0,1,2 of the left factor are generically independent -> rows 0,1,2
  // of A span the row space.
  const SelectionErrors se = selection_errors(a, {0, 1, 2}, 500.0, 3.0);
  EXPECT_NEAR(se.eps_r, 0.0, 1e-7);
}

TEST(ErrorModel, EpsRIsMaxOverRemaining) {
  const linalg::Matrix a = random_matrix(9, 12, 4);
  const SelectionErrors se = selection_errors(a, {0, 1}, 800.0, 3.0);
  double max_eps = 0.0;
  for (double e : se.per_path_eps) max_eps = std::max(max_eps, e);
  EXPECT_NEAR(se.eps_r, max_eps, 1e-12);
  EXPECT_NEAR(se.max_wc, se.eps_r * 800.0, 1e-9);
}

TEST(ErrorModel, KappaScalesLinearly) {
  const linalg::Matrix a = random_matrix(9, 12, 5);
  const SelectionErrors k3 = selection_errors(a, {0, 1}, 800.0, 3.0);
  const SelectionErrors k6 = selection_errors(a, {0, 1}, 800.0, 6.0);
  EXPECT_NEAR(k6.eps_r, 2.0 * k3.eps_r, 1e-12);
}

TEST(ErrorModel, TconsScalesInversely) {
  const linalg::Matrix a = random_matrix(9, 12, 6);
  const SelectionErrors t1 = selection_errors(a, {2, 4}, 400.0, 3.0);
  const SelectionErrors t2 = selection_errors(a, {2, 4}, 800.0, 3.0);
  EXPECT_NEAR(t1.eps_r, 2.0 * t2.eps_r, 1e-12);
}

TEST(ErrorModel, ErrorShrinksWithMoreRepresentatives) {
  const linalg::Matrix a = random_matrix(15, 10, 7);
  const linalg::Matrix w = linalg::gram(a);
  double prev = 1e18;
  for (std::size_t r = 1; r <= 8; ++r) {
    std::vector<int> rep;
    for (std::size_t i = 0; i < r; ++i) rep.push_back(static_cast<int>(i));
    const SelectionErrors se =
        selection_errors_from_gram(w, rep, 1000.0, 3.0);
    // Adding a representative never hurts the remaining paths it contains...
    // For nested prefixes the max error is non-increasing.
    EXPECT_LE(se.eps_r, prev + 1e-9);
    prev = se.eps_r;
  }
}

TEST(ErrorModel, InvalidInputsThrow) {
  const linalg::Matrix a = random_matrix(5, 5, 8);
  EXPECT_THROW((void)selection_errors(a, {0}, 0.0, 3.0),
               std::invalid_argument);
  EXPECT_THROW((void)selection_errors(a, {9}, 100.0, 3.0), std::out_of_range);
}

TEST(ErrorModel, DuplicateRepresentativeThrows) {
  // A repeated index used to be silently collapsed by the is_rep mask,
  // making |rep| lie about the measurement budget.  It must throw now.
  const linalg::Matrix a = random_matrix(6, 8, 10);
  EXPECT_THROW((void)selection_errors(a, {1, 3, 1}, 100.0, 3.0),
               std::invalid_argument);
  const linalg::Matrix w = linalg::gram(a);
  EXPECT_THROW((void)selection_errors_from_gram(w, {2, 2}, 100.0, 3.0),
               std::invalid_argument);
}

TEST(ErrorModel, WorstCaseGaussianHelper) {
  EXPECT_DOUBLE_EQ(worst_case_gaussian(0.0, 2.0, 3.0), 6.0);
  EXPECT_DOUBLE_EQ(worst_case_gaussian(-4.0, 1.0, 3.0), 7.0);
}

TEST(ErrorModel, RemainingExcludesSelection) {
  const linalg::Matrix a = random_matrix(6, 6, 9);
  const SelectionErrors se = selection_errors(a, {1, 3}, 100.0, 3.0);
  EXPECT_EQ(se.remaining, (std::vector<int>{0, 2, 4, 5}));
}

}  // namespace
}  // namespace repro::core
