#include "linalg/randomized_eig.h"

#include <gtest/gtest.h>

#include "linalg/cholesky.h"
#include "linalg/eigen_sym.h"
#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// PSD matrix of known rank.
Matrix psd_of_rank(std::size_t n, std::size_t rank, std::uint64_t seed) {
  return gram(random_matrix(n, rank, seed));
}

TEST(RandomizedEig, MatchesDenseEigOnLowRank) {
  const Matrix w = psd_of_rank(120, 15, 1);
  const RandomizedEigResult r = randomized_eig_psd(w);
  const EigenSymResult exact = eigen_sym(w);
  ASSERT_TRUE(r.spectrum_exhausted);
  ASSERT_GE(r.values.size(), 15u);
  // Top eigenvalues agree (exact are ascending).
  for (std::size_t k = 0; k < 15; ++k) {
    const double truth = exact.values[120 - 1 - k];
    EXPECT_NEAR(r.values[k], truth, 1e-8 * (1.0 + truth)) << k;
  }
  // Values beyond the true rank are ~0.
  for (std::size_t k = 15; k < r.values.size(); ++k) {
    EXPECT_LT(r.values[k], 1e-8 * r.values[0]);
  }
}

TEST(RandomizedEig, VectorsOrthonormalAndEigenEquationHolds) {
  const Matrix w = psd_of_rank(90, 10, 2);
  const RandomizedEigResult r = randomized_eig_psd(w);
  const Matrix vtv = multiply_at(r.vectors, r.vectors);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(r.vectors.cols())), 1e-9);
  for (std::size_t k = 0; k < 10; ++k) {
    const Vector v = r.vectors.column(k);
    const Vector wv = matvec(w, v);
    for (std::size_t i = 0; i < wv.size(); ++i) {
      EXPECT_NEAR(wv[i], r.values[k] * v[i], 1e-7 * (1.0 + r.values[0]));
    }
  }
}

TEST(RandomizedEig, AdaptiveGrowthCoversLargerRank) {
  // Rank far above the initial sketch: adaptive doubling must capture it.
  const Matrix w = psd_of_rank(300, 180, 3);
  RandomizedEigOptions opt;
  opt.initial_rank = 32;
  const RandomizedEigResult r = randomized_eig_psd(w, opt);
  EXPECT_TRUE(r.spectrum_exhausted);
  std::size_t above = 0;
  for (double v : r.values) {
    if (v > 1e-8 * r.values[0]) ++above;
  }
  EXPECT_EQ(above, 180u);
}

TEST(RandomizedEig, NonAdaptiveStopsAtRequestedSize) {
  const Matrix w = psd_of_rank(200, 150, 4);
  RandomizedEigOptions opt;
  opt.initial_rank = 40;
  opt.adaptive = false;
  const RandomizedEigResult r = randomized_eig_psd(w, opt);
  EXPECT_LE(r.values.size(), 40u + opt.oversample);
  EXPECT_FALSE(r.spectrum_exhausted);
  // The leading eigenvalues are still accurate.
  const EigenSymResult exact = eigen_sym(w);
  for (std::size_t k = 0; k < 10; ++k) {
    const double truth = exact.values[200 - 1 - k];
    EXPECT_NEAR(r.values[k], truth, 0.02 * truth);
  }
}

TEST(RandomizedEig, FullRankMatrixCapped) {
  Matrix w = psd_of_rank(60, 60, 5);
  for (std::size_t i = 0; i < 60; ++i) w(i, i) += 1.0;  // well conditioned
  const RandomizedEigResult r = randomized_eig_psd(w);
  EXPECT_EQ(r.values.size(), 60u);
  EXPECT_TRUE(r.spectrum_exhausted);
}

TEST(RandomizedEig, NotSquareThrows) {
  EXPECT_THROW((void)randomized_eig_psd(Matrix(3, 4)), std::invalid_argument);
}

TEST(RandomizedEig, DeterministicForSeed) {
  const Matrix w = psd_of_rank(80, 12, 6);
  const RandomizedEigResult a = randomized_eig_psd(w);
  const RandomizedEigResult b = randomized_eig_psd(w);
  ASSERT_EQ(a.values.size(), b.values.size());
  for (std::size_t i = 0; i < a.values.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.values[i], b.values[i]);
  }
}

TEST(PivotedCholesky, RevealsRank) {
  const Matrix w = psd_of_rank(70, 9, 7);
  const PivotedChol pc = pivoted_cholesky(w);
  EXPECT_EQ(pc.rank, 9u);
}

TEST(PivotedCholesky, FactorReconstructsPermutedMatrix) {
  const Matrix w = psd_of_rank(40, 12, 8);
  const PivotedChol pc = pivoted_cholesky(w);
  ASSERT_EQ(pc.rank, 12u);
  // (L L^T)_{ab} must equal W(perm[a], perm[b]).
  const Matrix llt = multiply_bt(pc.l, pc.l);
  for (std::size_t a = 0; a < 40; ++a) {
    for (std::size_t b = 0; b < 40; ++b) {
      EXPECT_NEAR(llt(a, b),
                  w(static_cast<std::size_t>(pc.perm[a]),
                    static_cast<std::size_t>(pc.perm[b])),
                  1e-8 * (1.0 + w.max_abs()));
    }
  }
}

TEST(PivotedCholesky, FullRankIdentity) {
  const PivotedChol pc = pivoted_cholesky(Matrix::identity(8));
  EXPECT_EQ(pc.rank, 8u);
}

TEST(PivotedCholesky, ZeroMatrix) {
  const PivotedChol pc = pivoted_cholesky(Matrix(5, 5));
  EXPECT_EQ(pc.rank, 0u);
}

TEST(PivotedCholesky, FirstPivotIsLargestDiagonal) {
  Matrix w = Matrix::identity(4);
  w(2, 2) = 9.0;
  const PivotedChol pc = pivoted_cholesky(w);
  EXPECT_EQ(pc.perm[0], 2);
}

TEST(PivotedCholesky, NotSquareThrows) {
  EXPECT_THROW((void)pivoted_cholesky(Matrix(2, 3)), std::invalid_argument);
}

}  // namespace
}  // namespace repro::linalg
