#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "linalg/gemm.h"
#include "linalg/simd/dispatch.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

// Random SPD matrix: A = B B^T + n*I.
Matrix random_spd(std::size_t n, std::uint64_t seed, double ridge = 0.0) {
  util::Rng rng(seed);
  Matrix b(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) b(i, j) = rng.normal();
  }
  Matrix s = gram(b);
  for (std::size_t i = 0; i < n; ++i) s(i, i) += ridge;
  return s;
}

TEST(Cholesky, FactorReconstructs) {
  const Matrix s = random_spd(10, 1, 1.0);
  const CholFactors f = chol_factor(s);
  ASSERT_TRUE(f.ok);
  EXPECT_LT(max_abs_diff(multiply_bt(f.l, f.l), s), 1e-9);
}

TEST(Cholesky, UpperTriangleIsZero) {
  const CholFactors f = chol_factor(random_spd(6, 2, 1.0));
  ASSERT_TRUE(f.ok);
  for (std::size_t i = 0; i < 6; ++i) {
    for (std::size_t j = i + 1; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(f.l(i, j), 0.0);
    }
  }
}

TEST(Cholesky, NotSquareThrows) {
  EXPECT_THROW((void)chol_factor(Matrix(2, 3)), std::invalid_argument);
}

TEST(Cholesky, IndefiniteRejected) {
  Matrix s{{1.0, 2.0}, {2.0, 1.0}};  // eigenvalues 3, -1
  EXPECT_FALSE(chol_factor(s).ok);
}

TEST(Cholesky, SolveMatchesDirect) {
  const Matrix s = random_spd(15, 3, 2.0);
  util::Rng rng(33);
  Vector b(15);
  for (double& v : b) v = rng.normal();
  const CholFactors f = chol_factor(s);
  const Vector x = chol_solve(f, b);
  const Vector sx = matvec(s, x);
  for (std::size_t i = 0; i < b.size(); ++i) EXPECT_NEAR(sx[i], b[i], 1e-9);
}

TEST(Cholesky, ForwardBackwardComposition) {
  const Matrix s = random_spd(8, 4, 1.0);
  const CholFactors f = chol_factor(s);
  Vector b{1, 2, 3, 4, 5, 6, 7, 8};
  const Vector via_parts = chol_backward(f, chol_forward(f, b));
  const Vector direct = chol_solve(f, b);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_DOUBLE_EQ(via_parts[i], direct[i]);
  }
}

TEST(Cholesky, RegularizedHandlesSingular) {
  // Rank-1 PSD matrix: plain factorization fails, regularized succeeds with
  // a small jitter.
  Matrix s{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_FALSE(chol_factor(s).ok);
  const RegularizedChol rc = chol_factor_regularized(s);
  EXPECT_TRUE(rc.factors.ok);
  EXPECT_GT(rc.jitter, 0.0);
  EXPECT_LT(rc.jitter, 1e-6);
}

TEST(Cholesky, RegularizedZeroJitterWhenSpd) {
  const Matrix s = random_spd(5, 6, 1.0);
  const RegularizedChol rc = chol_factor_regularized(s);
  EXPECT_TRUE(rc.factors.ok);
  EXPECT_DOUBLE_EQ(rc.jitter, 0.0);
}

TEST(Cholesky, RegularizedFarFromPsdThrows) {
  Matrix s{{-1.0, 0.0}, {0.0, -1.0}};
  EXPECT_THROW((void)chol_factor_regularized(s), std::runtime_error);
}

TEST(Cholesky, FactorReconstructsUnderEveryDispatchTier) {
  // n >= 32 so the SIMD tiers actually take the dispatched dot path.
  const std::string before = simd::tier_name(simd::active_tier());
  const Matrix s = random_spd(64, 14, 64.0);
  for (simd::Tier t : simd::available_tiers()) {
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    const CholFactors f = chol_factor(s);
    ASSERT_TRUE(f.ok) << simd::tier_name(t);
    EXPECT_LT(max_abs_diff(multiply_bt(f.l, f.l), s), 1e-8)
        << simd::tier_name(t);
  }
  simd::set_tier(before);
}

TEST(Cholesky, MultiRhsSolve) {
  const Matrix s = random_spd(7, 8, 1.0);
  const Matrix b = random_spd(7, 9, 0.5);
  const CholFactors f = chol_factor(s);
  const Matrix x = chol_solve(f, b);
  EXPECT_LT(max_abs_diff(multiply(s, x), b), 1e-8);
}

}  // namespace
}  // namespace repro::linalg
