#include "core/diagnosis.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/predictor.h"
#include "core/subset_select.h"
#include "timing/segments.h"
#include "util/rng.h"

namespace repro::core {
namespace {

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<variation::SpatialModel> spatial;
  std::unique_ptr<variation::VariationModel> model;

  Fixture() : nl(circuit::generate_benchmark("s1196")) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = 120});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<variation::SpatialModel>(3);
    model = std::make_unique<variation::VariationModel>(
        *tg, *spatial, paths, dec, variation::VariationOptions{});
  }

  // Measure the exact representative paths under a ground-truth x.
  std::pair<std::vector<int>, linalg::Vector> measure(
      const linalg::Vector& x_true) {
    const SubsetSelector sel(model->a());
    std::vector<int> rep = sel.select(sel.rank());
    const linalg::Vector d = model->path_delays(x_true);
    linalg::Vector y(rep.size());
    for (std::size_t k = 0; k < rep.size(); ++k) {
      y[k] = d[static_cast<std::size_t>(rep[k])];
    }
    return {std::move(rep), std::move(y)};
  }
};

TEST(Diagnosis, ZeroMeasurementDeviationGivesZeroEstimate) {
  Fixture f;
  auto [rep, y] = f.measure(linalg::Vector(f.model->num_params(), 0.0));
  const DiagnosisResult r =
      diagnose(*f.model, *f.tg, *f.spatial, rep, {}, y);
  EXPECT_LT(linalg::norm_inf(r.x_hat), 1e-6);
  for (const auto& reg : r.regions) {
    EXPECT_NEAR(reg.leff_sigma, 0.0, 1e-6);
    EXPECT_NEAR(reg.vt_sigma, 0.0, 1e-6);
  }
}

TEST(Diagnosis, RecoversInjectedDieToDieShift) {
  Fixture f;
  // Ground truth: +2 sigma die-to-die Leff shift (slot of region 0).
  linalg::Vector x_true(f.model->num_params(), 0.0);
  std::size_t die_slot = 0;
  for (std::size_t k = 0; k < f.model->covered_regions(); ++k) {
    if (f.model->region_slots()[k] == 0) die_slot = k;
  }
  x_true[die_slot] = 2.0;
  auto [rep, y] = f.measure(x_true);
  const DiagnosisResult r =
      diagnose(*f.model, *f.tg, *f.spatial, rep, {}, y);
  // The die-level region must carry the largest estimated Leff shift and be
  // positive and substantial.
  double die_est = 0.0;
  double max_other = 0.0;
  for (const auto& reg : r.regions) {
    if (reg.region == 0) {
      die_est = reg.leff_sigma;
    } else {
      max_other = std::max(max_other, std::abs(reg.leff_sigma));
    }
  }
  EXPECT_GT(die_est, 1.0);
  EXPECT_GT(die_est, max_other);
}

TEST(Diagnosis, PredictionsMatchTheorem2Predictor) {
  Fixture f;
  util::Rng rng(21);
  linalg::Vector x_true(f.model->num_params());
  for (double& v : x_true) v = rng.normal();
  auto [rep, y] = f.measure(x_true);
  const DiagnosisResult r =
      diagnose(*f.model, *f.tg, *f.spatial, rep, {}, y);
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  const linalg::Vector pred = p.predict(y);
  for (std::size_t k = 0; k < p.remaining.size(); ++k) {
    const auto i = static_cast<std::size_t>(p.remaining[k]);
    EXPECT_NEAR(r.predicted_path_delays[i], pred[k],
                1e-6 * (1.0 + std::abs(pred[k])));
  }
}

TEST(Diagnosis, MeasurementResidualNearZeroForConsistentData) {
  Fixture f;
  util::Rng rng(22);
  linalg::Vector x_true(f.model->num_params());
  for (double& v : x_true) v = rng.normal();
  auto [rep, y] = f.measure(x_true);
  const DiagnosisResult r =
      diagnose(*f.model, *f.tg, *f.spatial, rep, {}, y);
  EXPECT_LT(r.measurement_residual_ps, 1e-2);
}

TEST(Diagnosis, SuspectRankingFindsShiftedGate) {
  Fixture f;
  // Inject a large random shift on one specific covered gate and measure
  // *all* target paths (best-case observability).
  const std::size_t gate_slot = f.model->covered_gates() / 2;
  const circuit::GateId shifted = f.model->gate_slots()[gate_slot];
  linalg::Vector x_true(f.model->num_params(), 0.0);
  x_true[2 * f.model->covered_regions() + gate_slot] = 5.0;

  std::vector<int> rep(f.paths.size());
  for (std::size_t i = 0; i < rep.size(); ++i) rep[i] = static_cast<int>(i);
  const linalg::Vector y = f.model->path_delays(x_true);
  DiagnosisOptions opt;
  opt.top_gates = 10;
  const DiagnosisResult r =
      diagnose(*f.model, *f.tg, *f.spatial, rep, {}, y, opt);
  const bool found =
      std::any_of(r.suspects.begin(), r.suspects.end(),
                  [&](const GateSuspect& s) { return s.gate == shifted; });
  EXPECT_TRUE(found);
  EXPECT_EQ(r.suspects.size(), 10u);
  // Ranking is by decreasing |shift|.
  for (std::size_t k = 1; k < r.suspects.size(); ++k) {
    EXPECT_GE(std::abs(r.suspects[k - 1].delay_shift_ps),
              std::abs(r.suspects[k].delay_shift_ps) - 1e-12);
  }
}

TEST(Diagnosis, SegmentsMeasurementsSupported) {
  Fixture f;
  util::Rng rng(23);
  linalg::Vector x_true(f.model->num_params());
  for (double& v : x_true) v = rng.normal();
  const linalg::Vector d_seg = f.model->segment_delays(x_true);
  std::vector<int> segs;
  linalg::Vector y;
  for (std::size_t s = 0; s < f.model->num_segments(); ++s) {
    segs.push_back(static_cast<int>(s));
    y.push_back(d_seg[s]);
  }
  const DiagnosisResult r =
      diagnose(*f.model, *f.tg, *f.spatial, {}, segs, y);
  // Measuring every segment determines every path exactly.
  const linalg::Vector d_path = f.model->path_delays(x_true);
  for (std::size_t i = 0; i < d_path.size(); ++i) {
    EXPECT_NEAR(r.predicted_path_delays[i], d_path[i],
                1e-7 * (1.0 + std::abs(d_path[i])));
  }
}

TEST(Diagnosis, InvalidInputsThrow) {
  Fixture f;
  EXPECT_THROW(
      (void)diagnose(*f.model, *f.tg, *f.spatial, {0}, {}, linalg::Vector{}),
      std::invalid_argument);
  EXPECT_THROW(
      (void)diagnose(*f.model, *f.tg, *f.spatial, {}, {}, linalg::Vector{}),
      std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
