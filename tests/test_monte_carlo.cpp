#include "core/monte_carlo.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <memory>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/path_selection.h"
#include "timing/segments.h"
#include "util/thread_pool.h"
#include "variation/variation_model.h"

namespace repro::core {
namespace {

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<variation::SpatialModel> spatial;
  std::unique_ptr<variation::VariationModel> model;

  explicit Fixture(std::size_t max_paths = 80)
      : nl(circuit::generate_benchmark("s1196")) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = max_paths});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<variation::SpatialModel>(3);
    model = std::make_unique<variation::VariationModel>(*tg, *spatial, paths,
                                                        dec, variation::VariationOptions{});
  }
};

TEST(MonteCarlo, ExactPredictorHasNearZeroError) {
  Fixture f;
  const SubsetSelector sel(f.model->a());
  const auto rep = sel.select(sel.rank());
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  McOptions opt;
  opt.samples = 500;
  const McMetrics m = evaluate_predictor(*f.model, p, opt);
  EXPECT_LT(m.e1, 1e-6);
  EXPECT_LT(m.e2, 1e-6);
}

TEST(MonteCarlo, MetricsRelationships) {
  Fixture f;
  const SubsetSelector sel(f.model->a());
  const auto rep = sel.select(std::max<std::size_t>(1, sel.rank() / 3));
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  McOptions opt;
  opt.samples = 1000;
  const McMetrics m = evaluate_predictor(*f.model, p, opt);
  // e2 (mean of means) <= e1 (mean of maxima) <= worst_eps (max of maxima).
  EXPECT_LE(m.e2, m.e1);
  EXPECT_LE(m.e1, m.worst_eps + 1e-15);
  EXPECT_EQ(m.samples, 1000u);
  EXPECT_EQ(m.eps_max.size(), p.remaining.size());
  for (std::size_t i = 0; i < m.eps_max.size(); ++i) {
    EXPECT_LE(m.eps_mean[i], m.eps_max[i] + 1e-15);
    EXPECT_GE(m.eps_mean[i], 0.0);
  }
}

TEST(MonteCarlo, DeterministicForSeed) {
  Fixture f;
  const SubsetSelector sel(f.model->a());
  const auto rep = sel.select(5);
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  McOptions opt;
  opt.samples = 300;
  opt.seed = 77;
  const McMetrics m1 = evaluate_predictor(*f.model, p, opt);
  const McMetrics m2 = evaluate_predictor(*f.model, p, opt);
  EXPECT_DOUBLE_EQ(m1.e1, m2.e1);
  EXPECT_DOUBLE_EQ(m1.e2, m2.e2);
}

TEST(MonteCarlo, ChunkSizeDoesNotChangeResult) {
  Fixture f(40);
  const SubsetSelector sel(f.model->a());
  const auto rep = sel.select(4);
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  McOptions a;
  a.samples = 400;
  a.chunk = 64;
  McOptions b = a;
  b.chunk = 400;
  // Same seed stream, same sample count: chunking is an implementation
  // detail and must not alter the statistics.
  const McMetrics ma = evaluate_predictor(*f.model, p, a);
  const McMetrics mb = evaluate_predictor(*f.model, p, b);
  EXPECT_NEAR(ma.e1, mb.e1, 1e-12);
  EXPECT_NEAR(ma.e2, mb.e2, 1e-12);
}

TEST(MonteCarlo, BitIdenticalAcrossThreadCounts) {
  Fixture f;
  const SubsetSelector sel(f.model->a());
  const auto rep = sel.select(5);
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  McOptions opt;
  opt.samples = 512;
  opt.chunk = 64;
  opt.seed = 123;
  const std::size_t saved_threads = util::thread_count();
  std::vector<McMetrics> runs;
  for (std::size_t nt : {1u, 4u, 8u}) {
    util::set_threads(nt);
    runs.push_back(evaluate_predictor(*f.model, p, opt));
  }
  util::set_threads(saved_threads);
  for (std::size_t k = 1; k < runs.size(); ++k) {
    // Exact double equality: parallel sampling must be bit-identical.
    EXPECT_EQ(runs[0].e1, runs[k].e1);
    EXPECT_EQ(runs[0].e2, runs[k].e2);
    EXPECT_EQ(runs[0].worst_eps, runs[k].worst_eps);
    ASSERT_EQ(runs[0].eps_max.size(), runs[k].eps_max.size());
    for (std::size_t i = 0; i < runs[0].eps_max.size(); ++i) {
      EXPECT_EQ(runs[0].eps_max[i], runs[k].eps_max[i]);
      EXPECT_EQ(runs[0].eps_mean[i], runs[k].eps_mean[i]);
    }
  }
}

TEST(MonteCarlo, MoreRepresentativesLowerError) {
  Fixture f;
  const SubsetSelector sel(f.model->a());
  McOptions opt;
  opt.samples = 800;
  double prev_e2 = 1e9;
  for (std::size_t r : {3u, 8u, 20u}) {
    if (r > sel.rank()) break;
    const LinearPredictor p = make_path_predictor(
        f.model->a(), f.model->mu_paths(), sel.select(r));
    const McMetrics m = evaluate_predictor(*f.model, p, opt);
    EXPECT_LT(m.e2, prev_e2 + 1e-12);
    prev_e2 = m.e2;
  }
}

TEST(MonteCarlo, McErrorConsistentWithAnalyticSigma) {
  // The analytic error sigma and the observed mean absolute error relate by
  // E|N(0,s)| = s * sqrt(2/pi); check within MC tolerance for a few paths.
  Fixture f;
  const SubsetSelector sel(f.model->a());
  const auto rep = sel.select(6);
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  const linalg::Vector sig = p.error_sigmas();
  McOptions opt;
  opt.samples = 4000;
  const McMetrics m = evaluate_predictor(*f.model, p, opt);
  for (std::size_t i = 0; i < std::min<std::size_t>(5, sig.size()); ++i) {
    const double mu = p.mu_rem[i];
    const double expected_mean_rel =
        sig[i] * std::sqrt(2.0 / M_PI) / mu;  // delay ~ mu >> sigma
    if (expected_mean_rel < 1e-12) continue;
    EXPECT_NEAR(m.eps_mean[i], expected_mean_rel, 0.2 * expected_mean_rel);
  }
}

TEST(MonteCarlo, NoRemainingPathsThrows) {
  Fixture f(10);
  std::vector<int> all;
  for (std::size_t i = 0; i < f.paths.size(); ++i) {
    all.push_back(static_cast<int>(i));
  }
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), all);
  EXPECT_THROW((void)evaluate_predictor(*f.model, p, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
