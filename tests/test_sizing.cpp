#include "timing/sizing.h"

#include <gtest/gtest.h>

#include "circuit/generator.h"
#include "test_helpers.h"
#include "timing/sta.h"

namespace repro::timing {
namespace {

TEST(Sizing, CircuitDelayPreserved) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  const double before = run_sta(tg).circuit_delay;
  const SizingReport rep = emulate_area_recovery(tg);
  EXPECT_DOUBLE_EQ(rep.t_cons, before);
  // Area recovery must never push the circuit past the constraint.
  EXPECT_LE(rep.circuit_delay_after, before * (1.0 + 1e-9));
  // And the critical path is untouched, so the delay stays at the wall.
  EXPECT_NEAR(rep.circuit_delay_after, before, before * 1e-6);
}

TEST(Sizing, MeanSlackShrinks) {
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  const SizingReport rep = emulate_area_recovery(tg);
  EXPECT_LT(rep.mean_slack_after, rep.mean_slack_before);
}

TEST(Sizing, DelaysOnlyGrow) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  const std::vector<double> before = tg.gate_delays_ps();
  emulate_area_recovery(tg);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_GE(tg.gate_delay_ps(static_cast<circuit::GateId>(i)),
              before[i] - 1e-12);
  }
}

TEST(Sizing, MaxScaleRespected) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  const std::vector<double> before = tg.gate_delays_ps();
  SizingOptions opt;
  opt.max_scale = 1.5;
  emulate_area_recovery(tg, opt);
  for (std::size_t i = 0; i < before.size(); ++i) {
    EXPECT_LE(tg.gate_delay_ps(static_cast<circuit::GateId>(i)),
              before[i] * 1.5 + 1e-9);
  }
}

TEST(Sizing, SigmasRescaleWithDelay) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  emulate_area_recovery(tg);
  // After sizing, each gate's sigmas must match the library formula for its
  // new nominal delay.
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const auto id = static_cast<circuit::GateId>(i);
    const auto expect =
        lib.delay_sigmas_ps(nl.gate(id).type, tg.gate_delay_ps(id));
    EXPECT_DOUBLE_EQ(tg.gate_sigmas(id).leff, expect.leff);
    EXPECT_DOUBLE_EQ(tg.gate_sigmas(id).random, expect.random);
  }
}

TEST(Sizing, ZeroIterationsIsNoop) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  const std::vector<double> before = tg.gate_delays_ps();
  SizingOptions opt;
  opt.iterations = 0;
  emulate_area_recovery(tg, opt);
  EXPECT_EQ(tg.gate_delays_ps(), before);
}

TEST(Sizing, SlackWallForms) {
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  const SizingReport rep = emulate_area_recovery(tg);
  const StaResult sta = run_sta(tg, rep.t_cons);
  // A majority of combinational gates end up within 10% slack of Tcons
  // (min-area synthesis pushes cells to the wall).
  std::size_t near = 0, total = 0;
  for (std::size_t i = 0; i < nl.size(); ++i) {
    if (!circuit::is_combinational(
            nl.gate(static_cast<circuit::GateId>(i)).type)) {
      continue;
    }
    ++total;
    if (sta.slack[i] < 0.10 * rep.t_cons) ++near;
  }
  EXPECT_GT(near, total / 2);
}

TEST(Sizing, ChainIsAlreadyAtWall) {
  // A single chain has zero slack everywhere; sizing must not change it.
  circuit::Netlist nl = test::chain_netlist(8);
  const circuit::GateLibrary lib;
  TimingGraph tg(nl, lib);
  const std::vector<double> before = tg.gate_delays_ps();
  const SizingReport rep = emulate_area_recovery(tg);
  EXPECT_EQ(tg.gate_delays_ps(), before);
  EXPECT_NEAR(rep.mean_slack_before, 0.0, 1e-9);
}

}  // namespace
}  // namespace repro::timing
