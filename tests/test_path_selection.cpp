#include "core/path_selection.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "linalg/gemm.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Path-like matrix: rows share a few dominant directions plus small
// idiosyncratic noise, giving a steep singular-value decay like Figure 2(a).
linalg::Matrix correlated_rows(std::size_t n, std::size_t m, std::size_t k,
                               double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  const linalg::Matrix base = random_matrix(k, m, seed + 1);
  linalg::Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < k; ++d) {
      const double w = rng.uniform(0.2, 1.0);
      linalg::axpy(w, base.row(d), a.row(i));
    }
    for (std::size_t j = 0; j < m; ++j) a(i, j) += noise * rng.normal();
  }
  return a;
}

TEST(PathSelection, ExactRankReported) {
  const linalg::Matrix a =
      linalg::multiply(random_matrix(20, 5, 1), random_matrix(5, 12, 2));
  PathSelectionOptions opt;
  opt.epsilon = 1e-9;  // force exact selection
  const PathSelectionResult r = select_representative_paths(a, 1000.0, opt);
  EXPECT_EQ(r.exact_rank, 5u);
  EXPECT_EQ(r.representatives.size(), 5u);
  EXPECT_NEAR(r.eps_r, 0.0, 1e-7);
}

TEST(PathSelection, ToleranceReducesSelectionSize) {
  const linalg::Matrix a = correlated_rows(60, 40, 4, 0.02, 3);
  PathSelectionOptions tight;
  tight.epsilon = 1e-10;
  PathSelectionOptions loose;
  loose.epsilon = 0.05;
  const auto rt = select_representative_paths(a, 1000.0, tight);
  const auto rl = select_representative_paths(a, 1000.0, loose);
  EXPECT_LT(rl.representatives.size(), rt.representatives.size());
  // With strong row correlation the loose selection should be near the
  // number of dominant directions, far below rank.
  EXPECT_LE(rl.representatives.size(), 12u);
}

TEST(PathSelection, AchievedErrorWithinTolerance) {
  const linalg::Matrix a = correlated_rows(50, 30, 5, 0.05, 4);
  PathSelectionOptions opt;
  opt.epsilon = 0.05;
  const auto r = select_representative_paths(a, 2000.0, opt);
  EXPECT_LE(r.eps_r, 0.05);
  // The analytic per-path errors also respect the bound.
  for (double e : r.errors.per_path_eps) EXPECT_LE(e, 0.05 + 1e-12);
}

TEST(PathSelection, LinearAndBisectionAgreeOnSize) {
  const linalg::Matrix a = correlated_rows(40, 25, 4, 0.05, 5);
  PathSelectionOptions lin;
  lin.epsilon = 0.04;
  lin.strategy = SelectionStrategy::kLinearDecrement;
  PathSelectionOptions bis = lin;
  bis.strategy = SelectionStrategy::kBisection;
  const auto rl = select_representative_paths(a, 2000.0, lin);
  const auto rb = select_representative_paths(a, 2000.0, bis);
  // The error is monotone to numerical noise; allow 1 path of slack.
  EXPECT_NEAR(static_cast<double>(rl.representatives.size()),
              static_cast<double>(rb.representatives.size()), 1.0);
  EXPECT_LE(rb.eps_r, 0.04);
  EXPECT_LE(rl.eps_r, 0.04);
}

TEST(PathSelection, BisectionEvaluatesFewerCandidates) {
  const linalg::Matrix a = correlated_rows(80, 50, 6, 0.05, 6);
  PathSelectionOptions lin;
  lin.epsilon = 0.05;
  lin.strategy = SelectionStrategy::kLinearDecrement;
  PathSelectionOptions bis = lin;
  bis.strategy = SelectionStrategy::kBisection;
  const auto rl = select_representative_paths(a, 2000.0, lin);
  const auto rb = select_representative_paths(a, 2000.0, bis);
  EXPECT_LT(rb.candidates_evaluated, rl.candidates_evaluated);
}

TEST(PathSelection, HugeToleranceSelectsMinR) {
  const linalg::Matrix a = random_matrix(20, 15, 7);
  PathSelectionOptions opt;
  opt.epsilon = 1e6;
  const auto r = select_representative_paths(a, 1000.0, opt);
  EXPECT_EQ(r.representatives.size(), opt.min_r);
}

TEST(PathSelection, MinRRespected) {
  const linalg::Matrix a = random_matrix(20, 15, 8);
  PathSelectionOptions opt;
  opt.epsilon = 1e6;
  opt.min_r = 4;
  const auto r = select_representative_paths(a, 1000.0, opt);
  EXPECT_EQ(r.representatives.size(), 4u);
}

TEST(PathSelection, MinREqualToRankSelectsExactly) {
  // Full-row-rank 10x15 matrix: rank == 10.  min_r == rank pins both search
  // strategies to the exact selection regardless of tolerance.
  const linalg::Matrix a = random_matrix(10, 15, 10);
  for (const SelectionStrategy strategy :
       {SelectionStrategy::kLinearDecrement, SelectionStrategy::kBisection}) {
    PathSelectionOptions opt;
    opt.epsilon = 1e6;
    opt.min_r = 10;
    opt.strategy = strategy;
    const auto r = select_representative_paths(a, 1000.0, opt);
    EXPECT_EQ(r.exact_rank, 10u);
    EXPECT_EQ(r.representatives.size(), 10u);
    EXPECT_NEAR(r.eps_r, 0.0, 1e-7);
  }
}

TEST(PathSelection, MinRAboveRankClampsToRank) {
  // min_r beyond rank(A) is unreachable; both strategies must clamp to the
  // exact selection instead of silently ignoring the floor (the bisection
  // loop would otherwise never run and report a stale candidate count).
  const linalg::Matrix a =
      linalg::multiply(random_matrix(20, 6, 11), random_matrix(6, 12, 12));
  for (const SelectionStrategy strategy :
       {SelectionStrategy::kLinearDecrement, SelectionStrategy::kBisection}) {
    PathSelectionOptions opt;
    opt.epsilon = 1e6;
    opt.min_r = 100;  // far above rank == 6
    opt.strategy = strategy;
    const auto r = select_representative_paths(a, 1000.0, opt);
    EXPECT_EQ(r.exact_rank, 6u);
    EXPECT_EQ(r.representatives.size(), 6u) << "strategy ignored the clamp";
    EXPECT_NEAR(r.eps_r, 0.0, 1e-7);
    EXPECT_GE(r.candidates_evaluated, 1u);
  }
}

TEST(PathSelection, ZeroRankThrows) {
  PathSelectionOptions opt;
  EXPECT_THROW(
      (void)select_representative_paths(linalg::Matrix(5, 5), 100.0, opt),
      std::invalid_argument);
}

TEST(PathSelection, PrecomputedGramMatchesInternal) {
  const linalg::Matrix a = correlated_rows(30, 20, 3, 0.05, 9);
  const linalg::Matrix w = linalg::gram(a);
  PathSelectionOptions opt;
  opt.epsilon = 0.05;
  const auto r1 = select_representative_paths(a, 1000.0, opt);
  const auto r2 = select_representative_paths(a, 1000.0, opt, &w);
  EXPECT_EQ(r1.representatives, r2.representatives);
  EXPECT_DOUBLE_EQ(r1.eps_r, r2.eps_r);
}

TEST(PathSelection, PinnedGoldenSelection) {
  // Golden values captured before the batched-evaluator rewrite (panel
  // solve + memoized QRCP): both strategies must keep returning exactly
  // these representatives.  eps_r is compared with a relative tolerance
  // because compiler FP contraction may differ between the old per-vector
  // and new panel loops.
  const linalg::Matrix a = correlated_rows(48, 32, 5, 0.05, 20260805);
  const std::vector<int> golden_reps{22, 21, 24, 15, 36};
  const double golden_eps = 0.0007123722604426288;
  for (const SelectionStrategy strategy :
       {SelectionStrategy::kLinearDecrement, SelectionStrategy::kBisection}) {
    PathSelectionOptions opt;
    opt.epsilon = 2e-3;
    opt.strategy = strategy;
    const auto r = select_representative_paths(a, 2000.0, opt);
    EXPECT_EQ(r.representatives, golden_reps);
    EXPECT_NEAR(r.eps_r, golden_eps, 1e-9 * golden_eps);
  }
}

TEST(PathSelection, GreedySweepMatchesManualDecrement) {
  // The sweep driver must pick exactly the prefix a per-candidate linear
  // decrement over the same greedy order would pick, with the same errors.
  const linalg::Matrix a = correlated_rows(56, 60, 5, 0.05, 21);  // gram route
  const linalg::Matrix w = linalg::gram(a);
  const SubsetSelector selector(a, w);
  PathSelectionOptions opt;
  opt.epsilon = 0.04;
  opt.strategy = SelectionStrategy::kGreedySweep;
  const auto got = select_representative_paths(selector, w, 2000.0, opt);

  const std::vector<int>& order = selector.greedy_order(w);
  std::size_t r = selector.rank();
  while (r > 1) {
    std::vector<int> rep(order.begin(),
                         order.begin() + static_cast<std::ptrdiff_t>(r - 1));
    if (selection_errors_from_gram(w, rep, 2000.0, opt.kappa).eps_r >
        opt.epsilon) {
      break;
    }
    --r;
  }
  const std::vector<int> want(order.begin(),
                              order.begin() + static_cast<std::ptrdiff_t>(r));
  EXPECT_EQ(got.representatives, want);
  EXPECT_DOUBLE_EQ(
      got.eps_r, selection_errors_from_gram(w, want, 2000.0, opt.kappa).eps_r);
  EXPECT_LE(got.eps_r, opt.epsilon);
  // One sweep prices every candidate in [1, rank].
  EXPECT_EQ(got.candidates_evaluated, selector.rank());
}

TEST(PathSelection, GreedySweepRespectsEpsilonAndMinR) {
  const linalg::Matrix a = correlated_rows(50, 40, 4, 0.05, 22);
  PathSelectionOptions opt;
  opt.strategy = SelectionStrategy::kGreedySweep;
  opt.epsilon = 0.05;
  const auto r = select_representative_paths(a, 2000.0, opt);
  EXPECT_LE(r.eps_r, opt.epsilon);
  EXPECT_GE(r.representatives.size(), 1u);

  opt.epsilon = 1e6;
  opt.min_r = 6;
  const auto rmin = select_representative_paths(a, 2000.0, opt);
  EXPECT_EQ(rmin.representatives.size(), 6u);
}

TEST(PathSelection, GreedySweepWorksOnTallMatrix) {
  // cols < rows routes the selector through the direct SVD (no retained
  // Gram); the sweep driver must still work via the externally-supplied
  // Gram matrix.
  const linalg::Matrix a = correlated_rows(30, 18, 4, 0.05, 23);
  PathSelectionOptions opt;
  opt.strategy = SelectionStrategy::kGreedySweep;
  opt.epsilon = 0.05;
  const auto r = select_representative_paths(a, 2000.0, opt);
  EXPECT_LE(r.eps_r, opt.epsilon);
  EXPECT_GE(r.representatives.size(), 1u);
  EXPECT_LE(r.representatives.size(), r.exact_rank);
  // Representatives must be distinct row indices.
  std::vector<int> sorted = r.representatives;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(std::adjacent_find(sorted.begin(), sorted.end()), sorted.end());
}

TEST(PathSelection, GreedySweepBitIdenticalAcrossThreadCounts) {
  const linalg::Matrix a = correlated_rows(64, 48, 5, 0.05, 24);
  PathSelectionOptions opt;
  opt.strategy = SelectionStrategy::kGreedySweep;
  opt.epsilon = 0.04;
  const std::size_t saved_threads = util::thread_count();
  util::set_threads(1);
  const auto r1 = select_representative_paths(a, 2000.0, opt);
  util::set_threads(4);
  const auto r4 = select_representative_paths(a, 2000.0, opt);
  util::set_threads(saved_threads);
  EXPECT_EQ(r1.representatives, r4.representatives);
  EXPECT_EQ(r1.eps_r, r4.eps_r);
}

}  // namespace
}  // namespace repro::core
