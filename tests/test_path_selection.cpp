#include "core/path_selection.h"

#include <gtest/gtest.h>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Path-like matrix: rows share a few dominant directions plus small
// idiosyncratic noise, giving a steep singular-value decay like Figure 2(a).
linalg::Matrix correlated_rows(std::size_t n, std::size_t m, std::size_t k,
                               double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  const linalg::Matrix base = random_matrix(k, m, seed + 1);
  linalg::Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < k; ++d) {
      const double w = rng.uniform(0.2, 1.0);
      linalg::axpy(w, base.row(d), a.row(i));
    }
    for (std::size_t j = 0; j < m; ++j) a(i, j) += noise * rng.normal();
  }
  return a;
}

TEST(PathSelection, ExactRankReported) {
  const linalg::Matrix a =
      linalg::multiply(random_matrix(20, 5, 1), random_matrix(5, 12, 2));
  PathSelectionOptions opt;
  opt.epsilon = 1e-9;  // force exact selection
  const PathSelectionResult r = select_representative_paths(a, 1000.0, opt);
  EXPECT_EQ(r.exact_rank, 5u);
  EXPECT_EQ(r.representatives.size(), 5u);
  EXPECT_NEAR(r.eps_r, 0.0, 1e-7);
}

TEST(PathSelection, ToleranceReducesSelectionSize) {
  const linalg::Matrix a = correlated_rows(60, 40, 4, 0.02, 3);
  PathSelectionOptions tight;
  tight.epsilon = 1e-10;
  PathSelectionOptions loose;
  loose.epsilon = 0.05;
  const auto rt = select_representative_paths(a, 1000.0, tight);
  const auto rl = select_representative_paths(a, 1000.0, loose);
  EXPECT_LT(rl.representatives.size(), rt.representatives.size());
  // With strong row correlation the loose selection should be near the
  // number of dominant directions, far below rank.
  EXPECT_LE(rl.representatives.size(), 12u);
}

TEST(PathSelection, AchievedErrorWithinTolerance) {
  const linalg::Matrix a = correlated_rows(50, 30, 5, 0.05, 4);
  PathSelectionOptions opt;
  opt.epsilon = 0.05;
  const auto r = select_representative_paths(a, 2000.0, opt);
  EXPECT_LE(r.eps_r, 0.05);
  // The analytic per-path errors also respect the bound.
  for (double e : r.errors.per_path_eps) EXPECT_LE(e, 0.05 + 1e-12);
}

TEST(PathSelection, LinearAndBisectionAgreeOnSize) {
  const linalg::Matrix a = correlated_rows(40, 25, 4, 0.05, 5);
  PathSelectionOptions lin;
  lin.epsilon = 0.04;
  lin.strategy = SelectionStrategy::kLinearDecrement;
  PathSelectionOptions bis = lin;
  bis.strategy = SelectionStrategy::kBisection;
  const auto rl = select_representative_paths(a, 2000.0, lin);
  const auto rb = select_representative_paths(a, 2000.0, bis);
  // The error is monotone to numerical noise; allow 1 path of slack.
  EXPECT_NEAR(static_cast<double>(rl.representatives.size()),
              static_cast<double>(rb.representatives.size()), 1.0);
  EXPECT_LE(rb.eps_r, 0.04);
  EXPECT_LE(rl.eps_r, 0.04);
}

TEST(PathSelection, BisectionEvaluatesFewerCandidates) {
  const linalg::Matrix a = correlated_rows(80, 50, 6, 0.05, 6);
  PathSelectionOptions lin;
  lin.epsilon = 0.05;
  lin.strategy = SelectionStrategy::kLinearDecrement;
  PathSelectionOptions bis = lin;
  bis.strategy = SelectionStrategy::kBisection;
  const auto rl = select_representative_paths(a, 2000.0, lin);
  const auto rb = select_representative_paths(a, 2000.0, bis);
  EXPECT_LT(rb.candidates_evaluated, rl.candidates_evaluated);
}

TEST(PathSelection, HugeToleranceSelectsMinR) {
  const linalg::Matrix a = random_matrix(20, 15, 7);
  PathSelectionOptions opt;
  opt.epsilon = 1e6;
  const auto r = select_representative_paths(a, 1000.0, opt);
  EXPECT_EQ(r.representatives.size(), opt.min_r);
}

TEST(PathSelection, MinRRespected) {
  const linalg::Matrix a = random_matrix(20, 15, 8);
  PathSelectionOptions opt;
  opt.epsilon = 1e6;
  opt.min_r = 4;
  const auto r = select_representative_paths(a, 1000.0, opt);
  EXPECT_EQ(r.representatives.size(), 4u);
}

TEST(PathSelection, MinREqualToRankSelectsExactly) {
  // Full-row-rank 10x15 matrix: rank == 10.  min_r == rank pins both search
  // strategies to the exact selection regardless of tolerance.
  const linalg::Matrix a = random_matrix(10, 15, 10);
  for (const SelectionStrategy strategy :
       {SelectionStrategy::kLinearDecrement, SelectionStrategy::kBisection}) {
    PathSelectionOptions opt;
    opt.epsilon = 1e6;
    opt.min_r = 10;
    opt.strategy = strategy;
    const auto r = select_representative_paths(a, 1000.0, opt);
    EXPECT_EQ(r.exact_rank, 10u);
    EXPECT_EQ(r.representatives.size(), 10u);
    EXPECT_NEAR(r.eps_r, 0.0, 1e-7);
  }
}

TEST(PathSelection, MinRAboveRankClampsToRank) {
  // min_r beyond rank(A) is unreachable; both strategies must clamp to the
  // exact selection instead of silently ignoring the floor (the bisection
  // loop would otherwise never run and report a stale candidate count).
  const linalg::Matrix a =
      linalg::multiply(random_matrix(20, 6, 11), random_matrix(6, 12, 12));
  for (const SelectionStrategy strategy :
       {SelectionStrategy::kLinearDecrement, SelectionStrategy::kBisection}) {
    PathSelectionOptions opt;
    opt.epsilon = 1e6;
    opt.min_r = 100;  // far above rank == 6
    opt.strategy = strategy;
    const auto r = select_representative_paths(a, 1000.0, opt);
    EXPECT_EQ(r.exact_rank, 6u);
    EXPECT_EQ(r.representatives.size(), 6u) << "strategy ignored the clamp";
    EXPECT_NEAR(r.eps_r, 0.0, 1e-7);
    EXPECT_GE(r.candidates_evaluated, 1u);
  }
}

TEST(PathSelection, ZeroRankThrows) {
  PathSelectionOptions opt;
  EXPECT_THROW(
      (void)select_representative_paths(linalg::Matrix(5, 5), 100.0, opt),
      std::invalid_argument);
}

TEST(PathSelection, PrecomputedGramMatchesInternal) {
  const linalg::Matrix a = correlated_rows(30, 20, 3, 0.05, 9);
  const linalg::Matrix w = linalg::gram(a);
  PathSelectionOptions opt;
  opt.epsilon = 0.05;
  const auto r1 = select_representative_paths(a, 1000.0, opt);
  const auto r2 = select_representative_paths(a, 1000.0, opt, &w);
  EXPECT_EQ(r1.representatives, r2.representatives);
  EXPECT_DOUBLE_EQ(r1.eps_r, r2.eps_r);
}

}  // namespace
}  // namespace repro::core
