#include "timing/timing_graph.h"

#include <gtest/gtest.h>

#include <cmath>

#include "test_helpers.h"

namespace repro::timing {
namespace {

TEST(TimingGraph, LaunchCaptureZeroDelay) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  for (circuit::GateId id : nl.inputs()) {
    EXPECT_DOUBLE_EQ(tg.gate_delay_ps(id), 0.0);
  }
  for (circuit::GateId id : nl.outputs()) {
    EXPECT_DOUBLE_EQ(tg.gate_delay_ps(id), 0.0);
  }
}

TEST(TimingGraph, DelayDependsOnFanout) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  // G5 drives two sinks; G6 drives one.  Both delays follow the library.
  const auto g5 = *nl.find("G5");
  const auto g6 = *nl.find("G6");
  EXPECT_DOUBLE_EQ(tg.gate_delay_ps(g5),
                   lib.nominal_delay_ps(circuit::GateType::kAnd, 2));
  EXPECT_DOUBLE_EQ(tg.gate_delay_ps(g6),
                   lib.nominal_delay_ps(circuit::GateType::kBuf, 1));
}

TEST(TimingGraph, SigmasCachedConsistently) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto g5 = *nl.find("G5");
  const auto expect =
      lib.delay_sigmas_ps(circuit::GateType::kAnd, tg.gate_delay_ps(g5));
  EXPECT_DOUBLE_EQ(tg.gate_sigmas(g5).leff, expect.leff);
  EXPECT_DOUBLE_EQ(tg.gate_sigmas(g5).vt, expect.vt);
  EXPECT_DOUBLE_EQ(tg.gate_sigmas(g5).random, expect.random);
}

TEST(TimingGraph, SigmaTotalIsEuclidean) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto g5 = *nl.find("G5");
  const auto& s = tg.gate_sigmas(g5);
  EXPECT_NEAR(tg.gate_sigma_total_ps(g5),
              std::sqrt(s.leff * s.leff + s.vt * s.vt + s.random * s.random),
              1e-12);
}

TEST(TimingGraph, TopologicalOrderCached) {
  const circuit::Netlist nl = test::chain_netlist(10);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  EXPECT_EQ(tg.topological_order().size(), nl.size());
}

}  // namespace
}  // namespace repro::timing
