// Dispatch-tier coverage for the SIMD micro-kernel layer (DESIGN.md §11):
// every tier the host can run must agree with the scalar reference within
// the documented reassociation bound, the scalar tier must stay bit-exact
// against the legacy loop nests, results must be thread-count invariant
// within a tier, and unknown/unavailable set_tier requests must leave the
// active tier unchanged while ticking the dispatch_fallback counter.
#include "linalg/simd/dispatch.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/matrix.h"
#include "linalg/simd/kernels.h"
#include "linalg/trsm.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::linalg {
namespace {

// Agreement bound between a SIMD tier and the scalar reference.  The header
// contract gives |delta| <= c * k * u * sum|a||b| per accumulated element;
// for the k <= a-few-hundred normal-distributed operands used here that is
// well under 1e-10 (the golden-fixture envelope this repo budgets for tier
// drift).
constexpr double kTierTol = 1e-10;

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Restores the entry tier (and thread count) even if a test fails mid-way,
// so a failure cannot leak a forced tier into later tests.
class TierGuard {
 public:
  TierGuard()
      : tier_(simd::tier_name(simd::active_tier())),
        threads_(util::thread_count()) {}
  ~TierGuard() {
    simd::set_tier(tier_);
    util::set_threads(threads_);
  }
  TierGuard(const TierGuard&) = delete;
  TierGuard& operator=(const TierGuard&) = delete;

 private:
  std::string tier_;
  std::size_t threads_;
};

std::uint64_t counter_value(std::string_view name) {
  for (const auto& c : util::telemetry::snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// The legacy i-k-j multiply loop, replicated verbatim from the pre-SIMD
// kernel: the scalar tier must reproduce this bit for bit.
Matrix legacy_multiply(const Matrix& a, const Matrix& b) {
  const std::size_t m = a.rows(), k = a.cols(), n = b.cols();
  Matrix c(m, n);
  for (std::size_t i = 0; i < m; ++i) {
    double* ci = c.row(i).data();
    for (std::size_t p = 0; p < k; ++p) {
      const double aip = a(i, p);
      if (aip == 0.0) continue;
      const double* bp = b.row(p).data();
      for (std::size_t j = 0; j < n; ++j) ci[j] += aip * bp[j];
    }
  }
  return c;
}

TEST(SimdDispatch, ScalarAlwaysAvailable) {
  EXPECT_TRUE(simd::tier_available(simd::Tier::kScalar));
  const std::vector<simd::Tier> tiers = simd::available_tiers();
  ASSERT_FALSE(tiers.empty());
  EXPECT_EQ(tiers.front(), simd::Tier::kScalar);
  for (simd::Tier t : tiers) EXPECT_TRUE(simd::tier_available(t));
}

TEST(SimdDispatch, TierNamesRoundTrip) {
  TierGuard guard;
  for (simd::Tier t : simd::available_tiers()) {
    EXPECT_TRUE(simd::set_tier(simd::tier_name(t)));
    EXPECT_EQ(simd::active_tier(), t);
  }
}

TEST(SimdDispatch, BestAvailableTierIsRunnable) {
  EXPECT_TRUE(simd::tier_available(simd::best_available_tier()));
}

TEST(SimdDispatch, UnknownTierKeepsActiveTierAndCounts) {
  // A rejected request must not downgrade the process: whatever tier was
  // active stays active, the fallback counter ticks, and set_tier reports
  // failure.  Checked from every startable tier, not just scalar.
  TierGuard guard;
  util::telemetry::set_enabled(true);
  for (simd::Tier t : simd::available_tiers()) {
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    const std::uint64_t before =
        counter_value("linalg.simd.dispatch_fallback");
    EXPECT_FALSE(simd::set_tier("not-a-tier"));
    EXPECT_EQ(simd::active_tier(), t) << simd::tier_name(t);
    EXPECT_EQ(counter_value("linalg.simd.dispatch_fallback"), before + 1)
        << simd::tier_name(t);
  }
}

TEST(SimdDispatch, UnavailableTierKeepsActiveTierAndCounts) {
  // Whichever of avx2/neon the host lacks; skip on the (exotic) host that
  // can run both.
  const char* missing = nullptr;
  if (!simd::tier_available(simd::Tier::kAvx2)) missing = "avx2";
  else if (!simd::tier_available(simd::Tier::kNeon)) missing = "neon";
  if (missing == nullptr) GTEST_SKIP() << "host runs every probed tier";
  TierGuard guard;
  util::telemetry::set_enabled(true);
  const simd::Tier best = simd::best_available_tier();
  ASSERT_TRUE(simd::set_tier(simd::tier_name(best)));
  const std::uint64_t before = counter_value("linalg.simd.dispatch_fallback");
  EXPECT_FALSE(simd::set_tier(missing));
  EXPECT_EQ(simd::active_tier(), best);
  EXPECT_EQ(counter_value("linalg.simd.dispatch_fallback"), before + 1);
}

TEST(SimdDispatch, TheoreticalPeakPositiveAndThreadScaled) {
  for (simd::Tier t : simd::available_tiers()) {
    const double one = simd::theoretical_peak_gflops(t, 1);
    EXPECT_GT(one, 0.0) << simd::tier_name(t);
    EXPECT_DOUBLE_EQ(simd::theoretical_peak_gflops(t, 4), 4.0 * one);
    // threads == 0 is treated as 1 (serial fallback paths).
    EXPECT_DOUBLE_EQ(simd::theoretical_peak_gflops(t, 0), one);
  }
}

TEST(SimdKernels, ScalarGemmBitExactAgainstLegacyLoop) {
  TierGuard guard;
  ASSERT_TRUE(simd::set_tier("scalar"));
  util::set_threads(1);
  // Big enough that a SIMD tier would take the packed path (> 65536 flops):
  // proves the scalar tier routes through the legacy loop regardless.
  const Matrix a = random_matrix(60, 70, 21);
  const Matrix b = random_matrix(70, 52, 22);
  const Matrix c = multiply(a, b);
  const Matrix ref = legacy_multiply(a, b);
  EXPECT_EQ(max_abs_diff(c, ref), 0.0);
}

TEST(SimdKernels, PrimitivesMatchScalarWithinBound) {
  const simd::KernelOps* sc = simd::scalar_ops();
  ASSERT_NE(sc, nullptr);
  const std::size_t n = 259;  // odd remainder exercises every tail loop
  const Matrix x = random_matrix(5, n, 23);
  for (simd::Tier t : simd::available_tiers()) {
    if (t == simd::Tier::kScalar) continue;
    const simd::KernelOps* ops =
        t == simd::Tier::kAvx2    ? simd::avx2_ops()
        : t == simd::Tier::kAvx512 ? simd::avx512_ops()
                                   : simd::neon_ops();
    ASSERT_NE(ops, nullptr) << simd::tier_name(t);
    // dot
    const double dref = sc->dot(n, x.row(0).data(), x.row(1).data());
    EXPECT_NEAR(ops->dot(n, x.row(0).data(), x.row(1).data()), dref,
                kTierTol * (1.0 + std::abs(dref)))
        << simd::tier_name(t);
    // dot4
    double quad[4];
    ops->dot4(n, x.row(0).data(), x.row(1).data(), x.row(2).data(),
              x.row(3).data(), x.row(4).data(), quad);
    for (std::size_t r = 0; r < 4; ++r) {
      const double qref =
          sc->dot(n, x.row(0).data(), x.row(1 + r).data());
      EXPECT_NEAR(quad[r], qref, kTierTol * (1.0 + std::abs(qref)))
          << simd::tier_name(t) << " lane " << r;
    }
    // axpy
    std::vector<double> ya(x.row(1).data(), x.row(1).data() + n);
    std::vector<double> yb = ya;
    sc->axpy(n, 0.37, x.row(0).data(), ya.data());
    ops->axpy(n, 0.37, x.row(0).data(), yb.data());
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(yb[i], ya[i], kTierTol) << simd::tier_name(t) << " i=" << i;
    }
  }
}

TEST(SimdKernels, GemmAgreesAcrossTiersWithinBound) {
  TierGuard guard;
  util::set_threads(1);
  // Ragged shapes exercise the zero-padded edge tiles of every micro-kernel
  // geometry (4x8, 8x8, 4x4).
  const Matrix a = random_matrix(131, 147, 31);
  const Matrix b = random_matrix(147, 122, 32);
  ASSERT_TRUE(simd::set_tier("scalar"));
  const Matrix ref = multiply(a, b);
  const Matrix ref_bt = multiply_bt(a, b.transposed());
  const Matrix ref_at = multiply_at(a.transposed(), b);
  for (simd::Tier t : simd::available_tiers()) {
    if (t == simd::Tier::kScalar) continue;
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    EXPECT_LT(max_abs_diff(multiply(a, b), ref), kTierTol)
        << simd::tier_name(t);
    EXPECT_LT(max_abs_diff(multiply_bt(a, b.transposed()), ref_bt), kTierTol)
        << simd::tier_name(t);
    EXPECT_LT(max_abs_diff(multiply_at(a.transposed(), b), ref_at), kTierTol)
        << simd::tier_name(t);
  }
}

TEST(SimdKernels, GramAgreesAcrossTiersAndStaysSymmetric) {
  TierGuard guard;
  util::set_threads(1);
  const Matrix a = random_matrix(133, 117, 33);
  ASSERT_TRUE(simd::set_tier("scalar"));
  const Matrix ref = gram(a);
  const Matrix ref_t = gram_t(a);
  for (simd::Tier t : simd::available_tiers()) {
    if (t == simd::Tier::kScalar) continue;
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    const Matrix w = gram(a);
    EXPECT_LT(max_abs_diff(w, ref), kTierTol) << simd::tier_name(t);
    // Exact symmetry survives every tier: only the lower triangle is
    // computed, the upper is a mirror copy.
    EXPECT_EQ(max_abs_diff(w, w.transposed()), 0.0) << simd::tier_name(t);
    EXPECT_LT(max_abs_diff(gram_t(a), ref_t), kTierTol) << simd::tier_name(t);
  }
}

TEST(SimdKernels, TrsmAndCholeskyAgreeAcrossTiers) {
  TierGuard guard;
  util::set_threads(1);
  // SPD system: W = A A^T + n I, solved for a multi-RHS slab.
  const std::size_t n = 96;
  const Matrix a = random_matrix(n, 2 * n, 34);
  Matrix w = gram(a);
  for (std::size_t i = 0; i < n; ++i) w(i, i) += static_cast<double>(n);
  const Matrix rhs = random_matrix(n, 40, 35);
  ASSERT_TRUE(simd::set_tier("scalar"));
  const CholFactors f_ref = chol_factor(w);
  ASSERT_TRUE(f_ref.ok);
  Matrix x_ref = rhs;
  trsm_lower_inplace(f_ref.l, x_ref);
  for (simd::Tier t : simd::available_tiers()) {
    if (t == simd::Tier::kScalar) continue;
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    const CholFactors f = chol_factor(w);
    ASSERT_TRUE(f.ok) << simd::tier_name(t);
    EXPECT_LT(max_abs_diff(f.l, f_ref.l), kTierTol) << simd::tier_name(t);
    Matrix x = rhs;
    trsm_lower_inplace(f_ref.l, x);  // same factor isolates the trsm delta
    EXPECT_LT(max_abs_diff(x, x_ref), kTierTol) << simd::tier_name(t);
  }
}

TEST(SimdKernels, ResultsThreadCountInvariantWithinTier) {
  TierGuard guard;
  // Big enough that 4 threads actually split the row blocks and slabs.
  const Matrix a = random_matrix(300, 280, 41);
  const Matrix b = random_matrix(280, 260, 42);
  // A^T-form GEMM: 2*280*300*100 flops clears the packed-path threshold so
  // SIMD tiers split the row blocks across the pool.
  const Matrix bt = random_matrix(300, 100, 43);
  // gram_t shaped to clear its parallel_rows threshold (n*(k/2+n) > 4e6)
  // while staying cheap: short k, wide n, so the fused-axpy row updates run
  // at every offset 0..n-1.
  const Matrix g = random_matrix(8, 2048, 44);
  // trsm with 100 RHS columns: the 4-thread slab partition ends in a narrow
  // trailing slab ([96,100), width 4 < one avx2 iteration), the exact shape
  // that once routed serial and threaded runs onto different code paths.
  Matrix w = gram(a);
  for (std::size_t i = 0; i < 300; ++i) w(i, i) += 300.0;
  const CholFactors f = chol_factor(std::move(w));
  ASSERT_TRUE(f.ok);
  const Matrix rhs = random_matrix(300, 100, 45);
  for (simd::Tier t : simd::available_tiers()) {
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    util::set_threads(1);
    const Matrix c1 = multiply(a, b);
    const Matrix w1 = gram(a);
    const Matrix cat1 = multiply_at(a, bt);
    const Matrix gt1 = gram_t(g);
    Matrix x1 = rhs;
    trsm_lower_inplace(f.l, x1);
    util::set_threads(4);
    EXPECT_EQ(max_abs_diff(multiply(a, b), c1), 0.0) << simd::tier_name(t);
    EXPECT_EQ(max_abs_diff(gram(a), w1), 0.0) << simd::tier_name(t);
    EXPECT_EQ(max_abs_diff(multiply_at(a, bt), cat1), 0.0)
        << simd::tier_name(t);
    EXPECT_EQ(max_abs_diff(gram_t(g), gt1), 0.0) << simd::tier_name(t);
    Matrix x4 = rhs;
    trsm_lower_inplace(f.l, x4);
    EXPECT_EQ(max_abs_diff(x4, x1), 0.0) << simd::tier_name(t);
  }
}

}  // namespace
}  // namespace repro::linalg
