// End-to-end protocol tests for the selection service, over socketpairs (no
// filesystem socket, no separate process).  The pins that matter:
//
//   * a second open of an identical config does ZERO selection work — the
//     linalg.qr_colpivot.calls counter must not move;
//   * batched predictions are bit-identical to serial ones at every thread
//     count;
//   * malformed and truncated frames produce structured errors (or a clean
//     close), never a crash or a hang;
//   * shutdown answers everything already in flight before draining.
#include "server/server.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "server/client.h"
#include "server/protocol.h"
#include "util/json.h"
#include "util/socket.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"

namespace repro::server {
namespace {

SessionConfig small_config() {
  SessionConfig cfg;
  cfg.benchmark = "s1196";
  cfg.max_target_paths = 250;
  cfg.max_candidates = 4000;
  cfg.yield_samples = 300;
  return cfg;
}

std::uint64_t counter_value(std::string_view name) {
  const auto snap = util::telemetry::snapshot();
  for (const auto& c : snap.counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

// A server plus a helper to mint socketpair-backed clients against it.
class ServerFixture : public ::testing::Test {
 protected:
  void SetUp() override { util::telemetry::set_enabled(true); }
  void TearDown() override { server.stop(); }

  bool make_client(Client& client) {
    auto [ours, theirs] = util::socket_pair();
    if (!ours.valid() || !theirs.valid()) return false;
    server.serve_fd(std::move(theirs));
    return client.adopt(std::move(ours));
  }

  // Raw connection (no Client): for malformed-byte tests.
  util::Fd make_raw() {
    auto [ours, theirs] = util::socket_pair();
    server.serve_fd(std::move(theirs));
    return std::move(ours);
  }

  Server server;
};

TEST(ServerProtocol, PayloadCodecsRoundTrip) {
  SessionConfig cfg;
  cfg.benchmark = "s38417";
  cfg.epsilon = 0.07;
  cfg.kappa = 2.5;
  cfg.strategy = 2;
  cfg.min_r = 3;
  cfg.max_target_paths = 123;
  cfg.max_candidates = 4567;
  cfg.yield_samples = 89;
  cfg.num_shards = 6;
  SessionConfig cfg2;
  ASSERT_TRUE(decode_open_session(encode_open_session(cfg), cfg2));
  EXPECT_EQ(cfg2.benchmark, cfg.benchmark);
  EXPECT_EQ(cfg2.epsilon, cfg.epsilon);
  EXPECT_EQ(cfg2.kappa, cfg.kappa);
  EXPECT_EQ(cfg2.strategy, cfg.strategy);
  EXPECT_EQ(cfg2.min_r, cfg.min_r);
  EXPECT_EQ(cfg2.max_target_paths, cfg.max_target_paths);
  EXPECT_EQ(cfg2.max_candidates, cfg.max_candidates);
  EXPECT_EQ(cfg2.yield_samples, cfg.yield_samples);
  EXPECT_EQ(cfg2.num_shards, cfg.num_shards);
  EXPECT_EQ(cfg.cache_key(), cfg2.cache_key());

  // Doubles travel as IEEE bits: NaN slots survive.
  const double nan = std::nan("");
  std::uint32_t session = 0;
  std::vector<double> measured;
  ASSERT_TRUE(decode_predict(encode_predict(7, {1.5, nan, -0.0}), session,
                             measured));
  EXPECT_EQ(session, 7u);
  ASSERT_EQ(measured.size(), 3u);
  EXPECT_EQ(measured[0], 1.5);
  EXPECT_TRUE(std::isnan(measured[1]));
  EXPECT_TRUE(std::signbit(measured[2]));

  SessionInfo info;
  info.session = 9;
  info.rank = 74;
  info.n_meas = 5;
  info.n_rem = 245;
  info.eps_r = 0.05;
  info.cached = true;
  info.representatives = {4, 0, 17};
  SessionInfo info2;
  ASSERT_TRUE(decode_session_info(encode_session_info(info), info2));
  EXPECT_EQ(info2.session, 9u);
  EXPECT_EQ(info2.rank, 74u);
  EXPECT_TRUE(info2.cached);
  EXPECT_EQ(info2.representatives, info.representatives);

  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  ASSERT_TRUE(decode_error(
      encode_error(ErrorCode::kUnknownSession, "nope"), code, message));
  EXPECT_EQ(code, ErrorCode::kUnknownSession);
  EXPECT_EQ(message, "nope");

  // Truncated payloads decode to false, never UB.
  const std::string good = encode_open_session(cfg);
  for (std::size_t cut = 0; cut < good.size(); ++cut) {
    SessionConfig scratch;
    EXPECT_FALSE(
        decode_open_session(std::string_view(good).substr(0, cut), scratch));
  }
}

TEST_F(ServerFixture, SecondOpenOfSameConfigDoesZeroSelectionWork) {
  Client a;
  Client b;
  ASSERT_TRUE(make_client(a));
  ASSERT_TRUE(make_client(b));

  SessionInfo first;
  ASSERT_TRUE(a.open_session(small_config(), first)) <<
      a.last_error_message();
  EXPECT_FALSE(first.cached);
  EXPECT_GT(first.rank, 0u);
  EXPECT_EQ(first.n_meas, first.representatives.size());

  const std::uint64_t qrcp_after_build =
      counter_value("linalg.qr_colpivot.calls");
  EXPECT_GT(qrcp_after_build, 0u);

  // Same config from another connection: cache hit, zero re-factorization.
  SessionInfo second;
  ASSERT_TRUE(b.open_session(small_config(), second));
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.session, first.session);
  EXPECT_EQ(second.representatives, first.representatives);
  EXPECT_EQ(counter_value("linalg.qr_colpivot.calls"), qrcp_after_build);

  // A different config is a different session and does new work.
  SessionConfig other = small_config();
  other.epsilon = 0.10;
  SessionInfo third;
  ASSERT_TRUE(b.open_session(other, third));
  EXPECT_FALSE(third.cached);
  EXPECT_NE(third.session, first.session);
  EXPECT_GT(counter_value("linalg.qr_colpivot.calls"), qrcp_after_build);
}

TEST(ServerLimits, OversizedOpensRejectedStructurallyAndShardedRouteWorks) {
  util::telemetry::set_enabled(true);
  ServerOptions options;
  options.max_pool_paths = 4000;  // small_config() fits exactly under this
  options.max_shards = 4;
  Server server(options);

  Client client;
  auto [ours, theirs] = util::socket_pair();
  ASSERT_TRUE(ours.valid() && theirs.valid());
  server.serve_fd(std::move(theirs));
  ASSERT_TRUE(client.adopt(std::move(ours)));

  // Pool override beyond the operator ceiling: structured kBadRequest, no
  // build attempted.
  SessionConfig big = small_config();
  big.max_candidates = 4001;
  SessionInfo info;
  EXPECT_FALSE(client.open_session(big, info));
  EXPECT_EQ(client.last_error(), ErrorCode::kBadRequest);
  EXPECT_NE(client.last_error_message().find("max_pool_paths"),
            std::string::npos);

  // Shard count beyond the ceiling: same structured rejection.
  SessionConfig too_many = small_config();
  too_many.num_shards = 5;
  EXPECT_FALSE(client.open_session(too_many, info));
  EXPECT_EQ(client.last_error(), ErrorCode::kBadRequest);
  EXPECT_NE(client.last_error_message().find("max_shards"),
            std::string::npos);

  // The connection stays usable, and an in-range shard count routes the
  // session through the sharded pipeline.
  SessionConfig sharded = small_config();
  sharded.num_shards = 3;
  ASSERT_TRUE(client.open_session(sharded, info)) <<
      client.last_error_message();
  EXPECT_GT(info.rank, 0u);
  EXPECT_EQ(info.n_meas, info.representatives.size());
  EXPECT_GT(info.n_meas, 0u);
  EXPECT_TRUE(std::is_sorted(info.representatives.begin(),
                             info.representatives.end()));

  // num_shards is part of the cache key: the monolithic config is a
  // different session.
  SessionInfo mono;
  ASSERT_TRUE(client.open_session(small_config(), mono));
  EXPECT_NE(mono.session, info.session);

  // A sharded session predicts like any other.
  std::vector<double> measured(info.n_meas, 100.0);
  std::vector<double> predicted;
  EXPECT_TRUE(client.predict(info.session, measured, predicted));
  EXPECT_EQ(predicted.size(), info.n_rem);

  server.stop();
}

TEST_F(ServerFixture, BatchedPredictsBitIdenticalToSerialAtAnyThreadCount) {
  Client opener;
  ASSERT_TRUE(make_client(opener));
  SessionInfo info;
  ASSERT_TRUE(opener.open_session(small_config(), info));

  const std::shared_ptr<Session> session = server.sessions().find(info.session);
  ASSERT_NE(session, nullptr);

  constexpr int kClients = 6;
  constexpr int kPredictsEach = 4;
  const std::size_t saved_threads = util::thread_count();
  for (const std::size_t nt : {std::size_t{1}, std::size_t{4}}) {
    util::set_threads(nt);
    // Concurrent clients force the batcher to gather panels; every result
    // must still match the serial single-die predict bit for bit.
    std::vector<std::string> failures(kClients);
    std::vector<std::thread> threads;
    for (int c = 0; c < kClients; ++c) {
      threads.emplace_back([&, c] {
        Client client;
        if (!make_client(client)) {
          failures[c] = "client setup failed";
          return;
        }
        for (int k = 0; k < kPredictsEach; ++k) {
          std::vector<double> measured(info.n_meas);
          for (std::uint32_t j = 0; j < info.n_meas; ++j) {
            measured[j] = 100.0 * c + 7.0 * k + 0.31 * j +
                          (j % 3 == 0 ? 0.125 : -0.5);
          }
          std::vector<double> predicted;
          if (!client.predict(info.session, measured, predicted)) {
            failures[c] = client.last_error_message();
            return;
          }
          const linalg::Vector serial = session->predictor.predict(measured);
          if (predicted.size() != serial.size()) {
            failures[c] = "size mismatch";
            return;
          }
          if (std::memcmp(predicted.data(), serial.data(),
                          serial.size() * sizeof(double)) != 0) {
            failures[c] = "batched result differs from serial bits";
            return;
          }
        }
      });
    }
    for (auto& t : threads) t.join();
    for (int c = 0; c < kClients; ++c) {
      EXPECT_EQ(failures[c], "") << "client " << c << " at " << nt
                                 << " threads";
    }
  }
  util::set_threads(saved_threads);
  EXPECT_GE(session->batcher->dies(),
            static_cast<std::uint64_t>(2 * kClients * kPredictsEach));
}

TEST_F(ServerFixture, BadMagicGetsStructuredErrorThenClose) {
  util::Fd raw = make_raw();
  ASSERT_TRUE(util::send_all(raw.get(), "XXXX", 4));
  util::BufferedReader reader(raw.get());
  Frame frame;
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kError);
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  ASSERT_TRUE(decode_error(frame.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kBadMagic);
  EXPECT_EQ(read_frame(reader, frame), FrameReadStatus::kEof);
}

TEST_F(ServerFixture, MalformedFramesGetStructuredErrorsNeverHang) {
  util::Fd raw = make_raw();
  ASSERT_TRUE(util::send_all(raw.get(), kBinaryMagic, 4));
  util::BufferedReader reader(raw.get());
  Frame frame;

  // Unknown message type: structured error, connection stays usable.
  ASSERT_TRUE(send_frame(raw.get(), static_cast<MsgType>(0x55), 11, "??"));
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kError);
  EXPECT_EQ(frame.seq, 11u);
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  ASSERT_TRUE(decode_error(frame.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kUnknownType);

  // Garbage payload for a known type: kBadFrame, still usable.
  ASSERT_TRUE(send_frame(raw.get(), MsgType::kPredict, 12, "garbage"));
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kError);
  ASSERT_TRUE(decode_error(frame.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kBadFrame);

  // Unknown session: structured, still usable.
  ASSERT_TRUE(send_frame(raw.get(), MsgType::kPredict, 13,
                         encode_predict(4242, {1.0})));
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  ASSERT_TRUE(decode_error(frame.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kUnknownSession);

  // Semantically invalid open: kBadRequest, still usable.
  SessionConfig bad = small_config();
  bad.benchmark = "../../etc/passwd";
  ASSERT_TRUE(send_frame(raw.get(), MsgType::kOpenSession, 14,
                         encode_open_session(bad)));
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  ASSERT_TRUE(decode_error(frame.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kBadRequest);

  // The connection survived all of that: ping echoes.
  ASSERT_TRUE(send_frame(raw.get(), MsgType::kPing, 15, "echo"));
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kPong);
  EXPECT_EQ(frame.seq, 15u);
  EXPECT_EQ(frame.payload, "echo");

  // A frame length below the header minimum is unrecoverable: error, close.
  std::string tiny;
  put_u32(tiny, 2);
  tiny += "ab";
  ASSERT_TRUE(util::send_all(raw.get(), tiny.data(), tiny.size()));
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  ASSERT_TRUE(decode_error(frame.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kBadFrame);
  EXPECT_EQ(read_frame(reader, frame), FrameReadStatus::kEof);
}

TEST_F(ServerFixture, OversizedFrameIsRejectedAndClosed) {
  util::Fd raw = make_raw();
  ASSERT_TRUE(util::send_all(raw.get(), kBinaryMagic, 4));
  std::string huge_header;
  put_u32(huge_header, kMaxFrameLen + 1);
  ASSERT_TRUE(
      util::send_all(raw.get(), huge_header.data(), huge_header.size()));
  util::BufferedReader reader(raw.get());
  Frame frame;
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kError);
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  ASSERT_TRUE(decode_error(frame.payload, code, message));
  EXPECT_EQ(code, ErrorCode::kFrameTooLarge);
  EXPECT_EQ(read_frame(reader, frame), FrameReadStatus::kEof);
}

TEST_F(ServerFixture, TruncatedFrameClosesCleanly) {
  util::Fd raw = make_raw();
  ASSERT_TRUE(util::send_all(raw.get(), kBinaryMagic, 4));
  // Announce 100 payload bytes, deliver 3, hang up.
  std::string partial;
  put_u32(partial, 100);
  partial += "\x02";
  put_u32(partial, 1);
  partial += "abc";
  ASSERT_TRUE(util::send_all(raw.get(), partial.data(), partial.size()));
  raw.shutdown_write();
  // The strand must treat this as EOF and exit; stop() would hang forever
  // if it did not.  No response is owed for a frame that never finished.
  util::BufferedReader reader(raw.get());
  Frame frame;
  EXPECT_EQ(read_frame(reader, frame), FrameReadStatus::kEof);
  server.stop();
}

TEST_F(ServerFixture, ObserveStreamsThroughTheSessionCalibrator) {
  Client client;
  ASSERT_TRUE(make_client(client));
  SessionInfo info;
  ASSERT_TRUE(client.open_session(small_config(), info));

  std::vector<double> measured(info.n_meas, 300.0);
  measured[0] = std::nan("");  // dead tester slot
  std::vector<std::uint8_t> valid(info.n_meas, 1);
  if (info.n_meas > 1) valid[1] = 0;  // explicitly dropped
  ObserveOutcome outcome;
  ASSERT_TRUE(client.observe(info.session, measured, valid, outcome))
      << client.last_error_message();
  EXPECT_EQ(outcome.predicted.size(), info.n_rem);
  // The gate value decodes to a named enum either way.
  EXPECT_NE(core::to_string(static_cast<core::StreamGate>(outcome.gate)),
            nullptr);

  // Mismatched mask length is a structured error.
  ASSERT_FALSE(client.observe(info.session, measured, {1, 0}, outcome));
  EXPECT_EQ(client.last_error(), ErrorCode::kBadRequest);
}

TEST_F(ServerFixture, ShutdownAnswersInFlightRequestsFirst) {
  Client opener;
  ASSERT_TRUE(make_client(opener));
  SessionInfo info;
  ASSERT_TRUE(opener.open_session(small_config(), info));

  // Write several predicts AND the shutdown in one burst before reading
  // anything: every request accepted ahead of the shutdown must still be
  // answered, in order, before the ack.
  util::Fd raw = make_raw();
  ASSERT_TRUE(util::send_all(raw.get(), kBinaryMagic, 4));
  constexpr std::uint32_t kInFlight = 5;
  const std::vector<double> measured(info.n_meas, 1.0);
  std::string burst;
  for (std::uint32_t k = 0; k < kInFlight; ++k) {
    append_frame(burst, MsgType::kPredict, 100 + k,
                 encode_predict(info.session, measured));
  }
  append_frame(burst, MsgType::kShutdown, 100 + kInFlight, "");
  ASSERT_TRUE(util::send_all(raw.get(), burst.data(), burst.size()));

  util::BufferedReader reader(raw.get());
  Frame frame;
  for (std::uint32_t k = 0; k < kInFlight; ++k) {
    ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk) << k;
    EXPECT_EQ(frame.type, MsgType::kPredictResult);
    EXPECT_EQ(frame.seq, 100 + k);
  }
  ASSERT_EQ(read_frame(reader, frame), FrameReadStatus::kOk);
  EXPECT_EQ(frame.type, MsgType::kShutdownAck);
  EXPECT_TRUE(server.shutting_down());

  server.stop();
  // After the drain every connection is gone; the idle client fails fast
  // (EOF-driven transport error) instead of hanging.
  EXPECT_FALSE(opener.ping());
}

TEST_F(ServerFixture, JsonFrontEndSpeaksStrictJson) {
  util::Fd raw = make_raw();
  util::BufferedReader reader(raw.get());
  const auto rpc = [&](const std::string& line) {
    std::string wire = line;
    wire += '\n';
    EXPECT_TRUE(util::send_all(raw.get(), wire.data(), wire.size()));
    std::string response;
    EXPECT_TRUE(reader.read_line(response, 1u << 22));
    return response;
  };

  const util::json::Value pong = util::json::parse_or_throw(
      rpc("{\"op\": \"ping\", \"id\": 1}"));
  EXPECT_EQ(pong.number_or("id", -1), 1.0);
  EXPECT_TRUE(pong.find("pong")->boolean);

  const util::json::Value opened = util::json::parse_or_throw(rpc(
      "{\"op\": \"open_session\", \"id\": 2, \"benchmark\": \"s1196\", "
      "\"strategy\": \"bisection\", \"max_target_paths\": 250, "
      "\"max_candidates\": 4000, \"yield_samples\": 300}"));
  ASSERT_TRUE(opened.find("ok")->boolean);
  const auto session = static_cast<std::uint32_t>(
      opened.number_or("session", 0));
  const auto n_meas =
      static_cast<std::size_t>(opened.number_or("n_meas", 0));
  ASSERT_GT(n_meas, 0u);

  // Predict through JSON; values must round-trip to the serial bits (the
  // wire uses shortest-round-trip formatting).
  std::string req = "{\"op\": \"predict\", \"id\": 3, \"session\": ";
  req += std::to_string(session);
  req += ", \"measured\": [";
  std::vector<double> measured(n_meas);
  for (std::size_t j = 0; j < n_meas; ++j) {
    measured[j] = 250.0 + 0.33 * static_cast<double>(j);
    if (j > 0) req += ',';
    req += util::json::json_double(measured[j]);
  }
  req += "]}";
  const util::json::Value predicted = util::json::parse_or_throw(rpc(req));
  ASSERT_TRUE(predicted.find("ok")->boolean);
  const std::shared_ptr<Session> s = server.sessions().find(session);
  ASSERT_NE(s, nullptr);
  const linalg::Vector serial = s->predictor.predict(measured);
  const util::json::Value* values = predicted.find("predicted");
  ASSERT_NE(values, nullptr);
  ASSERT_EQ(values->items.size(), serial.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    EXPECT_EQ(values->items[i].number, serial[i]) << i;
  }

  // Malformed line: structured error, connection survives.
  const util::json::Value err = util::json::parse_or_throw(rpc("{oops"));
  EXPECT_FALSE(err.find("ok")->boolean);
  EXPECT_EQ(err.number_or("code", 0),
            static_cast<double>(ErrorCode::kBadFrame));
  const util::json::Value still = util::json::parse_or_throw(
      rpc("{\"op\": \"ping\", \"id\": 9}"));
  EXPECT_TRUE(still.find("pong")->boolean);

  // The metrics scrape parses strictly and carries the server counters.
  const util::json::Value metrics = util::json::parse_or_throw(
      rpc("{\"op\": \"metrics\", \"id\": 10}"));
  const util::json::Value* counters = metrics.find("metrics")->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("server.requests"), nullptr);
}

}  // namespace
}  // namespace repro::server
