#include "util/text.h"

#include <gtest/gtest.h>

namespace repro::util {
namespace {

TEST(Text, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, ToLower) {
  EXPECT_EQ(to_lower("NaNd2"), "nand2");
}

TEST(Text, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Text, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(G0)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Text, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.0523, 1), "5.2");
}

TEST(Text, TableRendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Text, TableCsv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Text, TableShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string csv = t.render_csv();
  EXPECT_EQ(csv, "a,b,c\nonly,,\n");
}

TEST(Text, ScaleModeDefaults) {
  // Without REPRO_FAST / REPRO_FULL the mode is 1 (default); with them set
  // the value changes.  We only check the default here to stay hermetic.
  unsetenv("REPRO_FAST");
  unsetenv("REPRO_FULL");
  EXPECT_EQ(repro_scale_mode(), 1);
  setenv("REPRO_FAST", "1", 1);
  EXPECT_EQ(repro_scale_mode(), 0);
  unsetenv("REPRO_FAST");
  setenv("REPRO_FULL", "1", 1);
  EXPECT_EQ(repro_scale_mode(), 2);
  unsetenv("REPRO_FULL");
}

}  // namespace
}  // namespace repro::util
