#include "util/text.h"

#include <gtest/gtest.h>

#include "util/cpu.h"
#include "util/thread_pool.h"

namespace repro::util {
namespace {

TEST(Text, Trim) {
  EXPECT_EQ(trim("  hello \t\n"), "hello");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim("   "), "");
  EXPECT_EQ(trim("x"), "x");
}

TEST(Text, ToLower) {
  EXPECT_EQ(to_lower("NaNd2"), "nand2");
}

TEST(Text, Split) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(parts[3], "c");
}

TEST(Text, SplitEmptyString) {
  const auto parts = split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(Text, StartsWith) {
  EXPECT_TRUE(starts_with("INPUT(G0)", "INPUT"));
  EXPECT_FALSE(starts_with("IN", "INPUT"));
}

TEST(Text, FormatHelpers) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.0523, 1), "5.2");
}

TEST(Text, TableRendersAligned) {
  TextTable t({"name", "value"});
  t.add_row({"alpha", "1"});
  t.add_row({"b", "22222"});
  const std::string s = t.render();
  EXPECT_NE(s.find("| name  | value |"), std::string::npos);
  EXPECT_NE(s.find("| alpha | 1     |"), std::string::npos);
}

TEST(Text, TableCsv) {
  TextTable t({"a", "b"});
  t.add_row({"1", "2"});
  EXPECT_EQ(t.render_csv(), "a,b\n1,2\n");
}

TEST(Text, TableShortRowsPadded) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only"});
  const std::string csv = t.render_csv();
  EXPECT_EQ(csv, "a,b,c\nonly,,\n");
}

TEST(Text, ParseUlongStrictAcceptsPlainDecimal) {
  EXPECT_EQ(parse_ulong_strict("0"), 0ul);
  EXPECT_EQ(parse_ulong_strict("8"), 8ul);
  EXPECT_EQ(parse_ulong_strict("00123"), 123ul);
  EXPECT_EQ(parse_ulong_strict("4294967296"), 4294967296ul);
}

TEST(Text, ParseUlongStrictRejectsPartialParses) {
  // strtoul would happily parse the prefix of every one of these; the
  // strict parser must reject the full string instead.
  EXPECT_FALSE(parse_ulong_strict("8x"));
  EXPECT_FALSE(parse_ulong_strict("4,8"));
  EXPECT_FALSE(parse_ulong_strict("8 "));
  EXPECT_FALSE(parse_ulong_strict(" 8"));
  EXPECT_FALSE(parse_ulong_strict("+8"));
  EXPECT_FALSE(parse_ulong_strict("-1"));
  EXPECT_FALSE(parse_ulong_strict("0x10"));
  EXPECT_FALSE(parse_ulong_strict("8.0"));
  EXPECT_FALSE(parse_ulong_strict(""));
  EXPECT_FALSE(parse_ulong_strict("99999999999999999999999"));  // overflow
}

TEST(Text, ParseDoubleStrictAcceptsNumbers) {
  EXPECT_DOUBLE_EQ(*parse_double_strict("2.5"), 2.5);
  EXPECT_DOUBLE_EQ(*parse_double_strict("-0.25"), -0.25);
  EXPECT_DOUBLE_EQ(*parse_double_strict("3"), 3.0);
  EXPECT_DOUBLE_EQ(*parse_double_strict("1e2"), 100.0);
  EXPECT_DOUBLE_EQ(*parse_double_strict("2.5E-1"), 0.25);
}

TEST(Text, ParseDoubleStrictRejectsPartialAndExotic) {
  EXPECT_FALSE(parse_double_strict("2.5GHz"));
  EXPECT_FALSE(parse_double_strict("2,5"));
  EXPECT_FALSE(parse_double_strict(" 2.5"));
  EXPECT_FALSE(parse_double_strict("2.5 "));
  EXPECT_FALSE(parse_double_strict(""));
  EXPECT_FALSE(parse_double_strict("nan"));
  EXPECT_FALSE(parse_double_strict("inf"));
  EXPECT_FALSE(parse_double_strict("-INFINITY"));
  EXPECT_FALSE(parse_double_strict("0x1p4"));
  EXPECT_FALSE(parse_double_strict("1e999"));  // overflow
}

TEST(Text, ThreadOverrideStrictness) {
  EXPECT_EQ(env_thread_override(nullptr), std::nullopt);
  EXPECT_EQ(env_thread_override("8"), 8u);
  EXPECT_EQ(env_thread_override("1"), 1u);
  // Malformed values fall back to auto-detection rather than silently
  // truncating ("8x" must not run with 8 threads).
  EXPECT_EQ(env_thread_override("8x"), std::nullopt);
  EXPECT_EQ(env_thread_override("4,8"), std::nullopt);
  EXPECT_EQ(env_thread_override("0"), std::nullopt);
  EXPECT_EQ(env_thread_override(""), std::nullopt);
  EXPECT_EQ(env_thread_override("9999"), 256u);  // clamped
}

TEST(Text, GhzOverrideStrictness) {
  EXPECT_EQ(env_ghz_override(nullptr), std::nullopt);
  EXPECT_DOUBLE_EQ(*env_ghz_override("3.5"), 3.5);
  EXPECT_EQ(env_ghz_override("3.5GHz"), std::nullopt);
  EXPECT_EQ(env_ghz_override("2,5"), std::nullopt);
  EXPECT_EQ(env_ghz_override("nan"), std::nullopt);
  EXPECT_EQ(env_ghz_override("0"), std::nullopt);      // below plausibility
  EXPECT_EQ(env_ghz_override("100"), std::nullopt);    // above plausibility
}

TEST(Text, ScaleModeDefaults) {
  // Without REPRO_FAST / REPRO_FULL the mode is 1 (default); with them set
  // the value changes.  We only check the default here to stay hermetic.
  unsetenv("REPRO_FAST");
  unsetenv("REPRO_FULL");
  EXPECT_EQ(repro_scale_mode(), 1);
  setenv("REPRO_FAST", "1", 1);
  EXPECT_EQ(repro_scale_mode(), 0);
  unsetenv("REPRO_FAST");
  setenv("REPRO_FULL", "1", 1);
  EXPECT_EQ(repro_scale_mode(), 2);
  unsetenv("REPRO_FULL");
}

}  // namespace
}  // namespace repro::util
