#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "util/rng.h"

namespace repro::util {
namespace {

// Every test leaves the pool at a known parallel configuration so test order
// does not matter.
class ThreadPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { set_threads(4); }
};

TEST_F(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  set_threads(4);
  std::vector<std::atomic<int>> hits(1000);
  for (auto& h : hits) h = 0;
  parallel_for(0, hits.size(), 7, [&](std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST_F(ThreadPoolTest, GrainEdgeCases) {
  set_threads(4);
  // Empty range: fn must never run.
  parallel_for(5, 5, 4, [](std::size_t, std::size_t) { FAIL(); });
  parallel_for(7, 3, 4, [](std::size_t, std::size_t) { FAIL(); });

  // Grain larger than the range: one inline chunk covering everything.
  std::size_t calls = 0;
  parallel_for(2, 10, 100, [&](std::size_t b, std::size_t e) {
    ++calls;
    EXPECT_EQ(b, 2u);
    EXPECT_EQ(e, 10u);
  });
  EXPECT_EQ(calls, 1u);

  // Grain 0 is treated as 1 (every index its own chunk).
  std::vector<std::atomic<int>> hits(17);
  for (auto& h : hits) h = 0;
  parallel_for(0, hits.size(), 0, [&](std::size_t b, std::size_t e) {
    EXPECT_EQ(e, b + 1);
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);

  // Range not divisible by grain: the tail chunk is short, nothing is lost.
  std::atomic<std::size_t> covered{0};
  parallel_for(0, 10, 4, [&](std::size_t b, std::size_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 10u);
}

TEST_F(ThreadPoolTest, TaskExceptionPropagatesToCaller) {
  set_threads(4);
  EXPECT_THROW(
      parallel_for(0, 64, 1,
                   [](std::size_t b, std::size_t) {
                     if (b == 13) throw std::runtime_error("boom");
                   }),
      std::runtime_error);
  // The pool stays usable after a failed loop.
  std::atomic<std::size_t> covered{0};
  parallel_for(0, 64, 1, [&](std::size_t b, std::size_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 64u);
}

TEST_F(ThreadPoolTest, SubmitExceptionPropagatesThroughFuture) {
  set_threads(4);
  auto f = ThreadPool::instance().submit(
      []() -> int { throw std::invalid_argument("bad"); });
  EXPECT_THROW(f.get(), std::invalid_argument);
}

TEST_F(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  set_threads(4);
  std::atomic<long> total{0};
  parallel_for(0, 16, 1, [&](std::size_t ob, std::size_t oe) {
    for (std::size_t o = ob; o < oe; ++o) {
      // The inner loop runs inline on the current thread.
      parallel_for(0, 32, 4, [&](std::size_t b, std::size_t e) {
        for (std::size_t i = b; i < e; ++i) {
          total.fetch_add(static_cast<long>(i));
        }
      });
    }
  });
  EXPECT_EQ(total.load(), 16 * (31 * 32 / 2));
}

TEST_F(ThreadPoolTest, SubmitReturnsValues) {
  set_threads(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(ThreadPool::instance().submit([i] { return i * i; }));
  }
  for (int i = 0; i < 32; ++i) EXPECT_EQ(futures[static_cast<std::size_t>(i)].get(), i * i);
}

TEST_F(ThreadPoolTest, SetThreadsReconfigures) {
  set_threads(3);
  EXPECT_EQ(thread_count(), 3u);
  set_threads(0);  // clamped to 1
  EXPECT_EQ(thread_count(), 1u);
  // Single-thread mode still runs everything (inline).
  std::size_t covered = 0;
  parallel_for(0, 10, 3, [&](std::size_t b, std::size_t e) { covered += e - b; });
  EXPECT_EQ(covered, 10u);
  auto f = ThreadPool::instance().submit([] { return 41 + 1; });
  EXPECT_EQ(f.get(), 42);
}

TEST_F(ThreadPoolTest, SetThreadsInsideParallelRegionThrows) {
  // Reconfiguring joins the workers; from inside a parallel_for body that
  // would be a self-join deadlock, so it must throw instead.  Many unit
  // chunks ensure the parallel path (not the inline fast path) runs and the
  // region flag is set on the executing thread.
  set_threads(2);
  std::atomic<int> threw{0};
  parallel_for(0, 64, 1, [&](std::size_t, std::size_t) {
    try {
      set_threads(8);
    } catch (const std::logic_error&) {
      threw.fetch_add(1);
    }
  });
  EXPECT_GT(threw.load(), 0);
  // The pool configuration is untouched and still usable.
  EXPECT_EQ(thread_count(), 2u);
  std::atomic<std::size_t> covered{0};
  parallel_for(0, 32, 1, [&](std::size_t b, std::size_t e) {
    covered.fetch_add(e - b);
  });
  EXPECT_EQ(covered.load(), 32u);

  // The same guard protects pool tasks.
  auto f = ThreadPool::instance().submit([] {
    try {
      set_threads(8);
      return false;
    } catch (const std::logic_error&) {
      return true;
    }
  });
  EXPECT_TRUE(f.get());
}

TEST_F(ThreadPoolTest, SameResultForAnyThreadCount) {
  // A non-commutative-looking reduction done with per-chunk slots must be
  // bit-identical across thread counts (the MC determinism scheme in small).
  auto run = [](std::size_t threads) {
    set_threads(threads);
    const std::size_t n = 1024, chunk = 64;
    const std::size_t nchunks = (n + chunk - 1) / chunk;
    std::vector<double> partial(nchunks, 0.0);
    // Iterate chunk indices inside fn: parallel_for may merge consecutive
    // chunks into one call, so the reduction slots are indexed explicitly.
    parallel_for(0, nchunks, 1, [&](std::size_t cb, std::size_t ce) {
      for (std::size_t ci = cb; ci < ce; ++ci) {
        double s = 0.0;
        for (std::size_t i = ci * chunk; i < (ci + 1) * chunk; ++i) {
          Rng rng = Rng::stream(99, i);
          s += rng.normal();
        }
        partial[ci] = s;
      }
    });
    double sum = 0.0;
    for (double p : partial) sum += p;
    return sum;
  };
  const double s1 = run(1);
  const double s4 = run(4);
  const double s8 = run(8);
  EXPECT_EQ(s1, s4);
  EXPECT_EQ(s1, s8);
}

TEST_F(ThreadPoolTest, RngStreamDependsOnlyOnArguments) {
  Rng a = Rng::stream(7, 3);
  Rng b = Rng::stream(7, 3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
  // Different indices and seeds give different streams.
  Rng c = Rng::stream(7, 4);
  Rng d = Rng::stream(8, 3);
  Rng e = Rng::stream(7, 3);
  EXPECT_NE(e.next_u64(), c.next_u64());
  EXPECT_NE(Rng::stream(7, 3).next_u64(), d.next_u64());
}

}  // namespace
}  // namespace repro::util
