#include "core/predictor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/monte_carlo.h"
#include "core/subset_select.h"
#include "linalg/gemm.h"
#include "timing/segments.h"
#include "util/rng.h"
#include "util/telemetry.h"
#include "util/thread_pool.h"
#include "variation/variation_model.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// ---------------------------------------------------------------------------
// Degenerate construction inputs: always a defined status, never a throw.
// ---------------------------------------------------------------------------

TEST(RobustPredictor, DegenerateInputsGiveDefinedFailedStatus) {
  const linalg::Matrix a = random_matrix(6, 10, 1);
  const linalg::Vector mu(6, 100.0);

  // Zero target paths / zero parameters.
  EXPECT_NO_THROW({
    const auto p = make_robust_path_predictor(linalg::Matrix(), {}, {0});
    EXPECT_EQ(p.status.health, PredictorHealth::kFailed);
    EXPECT_FALSE(p.status.message.empty());
  });
  EXPECT_NO_THROW({
    const auto p = make_robust_path_predictor(linalg::Matrix(6, 0),
                                              linalg::Vector(6, 0.0), {0});
    EXPECT_EQ(p.status.health, PredictorHealth::kFailed);
  });
  // mu size mismatch.
  {
    const auto p = make_robust_path_predictor(a, linalg::Vector(3, 0.0), {0});
    EXPECT_EQ(p.status.health, PredictorHealth::kFailed);
  }
  // No representative paths at all.
  {
    const auto p = make_robust_path_predictor(a, mu, {});
    EXPECT_EQ(p.status.health, PredictorHealth::kFailed);
    EXPECT_FALSE(p.status.usable());
  }
  // Out-of-range representative / dead indices.
  EXPECT_EQ(make_robust_path_predictor(a, mu, {99}).status.health,
            PredictorHealth::kFailed);
  EXPECT_EQ(make_robust_path_predictor(a, mu, {0}, {-1}).status.health,
            PredictorHealth::kFailed);
  // Every representative dead, nothing to promote.
  {
    RobustOptions opt;
    opt.promote_backups = false;
    const auto p = make_robust_path_predictor(a, mu, {0, 1}, {0, 1}, opt);
    EXPECT_EQ(p.status.health, PredictorHealth::kFailed);
    EXPECT_EQ(p.status.dropped_paths.size(), 2u);
  }
}

TEST(RobustPredictor, FailedPredictorPredictsNominal) {
  const linalg::Matrix a = random_matrix(4, 6, 2);
  const linalg::Vector mu{10.0, 20.0, 30.0, 40.0};
  const auto p = make_robust_path_predictor(a, mu, {});
  const RobustPrediction pr = p.predict(linalg::Vector{});
  EXPECT_EQ(pr.health, PredictorHealth::kFailed);
  EXPECT_EQ(pr.values, p.base.mu_rem);
}

TEST(RobustPredictor, EmptyRemainingSetIsOk) {
  // Measuring every path leaves nothing to predict: valid, empty prediction.
  const linalg::Matrix a = random_matrix(4, 8, 3);
  const linalg::Vector mu(4, 50.0);
  const auto p = make_robust_path_predictor(a, mu, {0, 1, 2, 3});
  EXPECT_EQ(p.status.health, PredictorHealth::kOk);
  EXPECT_TRUE(p.base.remaining.empty());
  linalg::Vector meas = p.base.mu_meas;
  const RobustPrediction pr = p.predict(meas);
  EXPECT_TRUE(pr.values.empty());
  EXPECT_EQ(pr.health, PredictorHealth::kOk);
}

TEST(RobustPredictor, RankDeficientGramIsRegularizedNotFatal) {
  // Rank-2 sensitivity matrix, 4 measured rows: the measured Gram is
  // singular; construction must degrade (reported ridge) instead of throwing.
  const linalg::Matrix a =
      linalg::multiply(random_matrix(8, 2, 4), random_matrix(2, 12, 5));
  const linalg::Vector mu(8, 200.0);
  RobustPredictor p;
  EXPECT_NO_THROW(p = make_robust_path_predictor(a, mu, {0, 1, 2, 3}));
  EXPECT_EQ(p.status.health, PredictorHealth::kDegraded);
  EXPECT_GT(p.status.ridge, 0.0);
  EXPECT_GT(p.status.gram_condition, p.options.max_condition);
  EXPECT_TRUE(p.status.usable());
  for (std::size_t i = 0; i < p.base.coef.rows(); ++i) {
    for (std::size_t j = 0; j < p.base.coef.cols(); ++j) {
      EXPECT_TRUE(std::isfinite(p.base.coef(i, j)));
    }
  }
}

// ---------------------------------------------------------------------------
// Graceful degradation: dead paths and backup promotion.
// ---------------------------------------------------------------------------

TEST(RobustPredictor, DeadPathDroppedAndBackupPromoted) {
  const linalg::Matrix a = random_matrix(10, 15, 6);
  const linalg::Vector mu(10, 300.0);
  RobustOptions opt;
  opt.backup_order = {0, 1, 2, 3, 4, 5, 6};  // pivot order stand-in
  const auto p = make_robust_path_predictor(a, mu, {0, 1, 2}, {1}, opt);
  EXPECT_EQ(p.status.health, PredictorHealth::kDegraded);
  ASSERT_EQ(p.status.dropped_paths, (std::vector<int>{1}));
  // First backup not already measured and not dead is 3.
  ASSERT_EQ(p.status.promoted_paths, (std::vector<int>{3}));
  EXPECT_EQ(p.base.measured_paths, (std::vector<int>{0, 2, 3}));
  // The dead path is now predicted, not measured.
  EXPECT_NE(std::find(p.base.remaining.begin(), p.base.remaining.end(), 1),
            p.base.remaining.end());
}

TEST(RobustPredictor, NoBackupPromotionWhenDisabled) {
  const linalg::Matrix a = random_matrix(10, 15, 7);
  const linalg::Vector mu(10, 300.0);
  RobustOptions opt;
  opt.promote_backups = false;
  opt.backup_order = {3, 4, 5};
  const auto p = make_robust_path_predictor(a, mu, {0, 1, 2}, {1}, opt);
  EXPECT_TRUE(p.status.promoted_paths.empty());
  EXPECT_EQ(p.base.measured_paths, (std::vector<int>{0, 2}));
  EXPECT_EQ(p.status.health, PredictorHealth::kDegraded);
}

// ---------------------------------------------------------------------------
// Per-die robust prediction.
// ---------------------------------------------------------------------------

TEST(RobustPredictor, CleanMeasurementsMatchTheorem2) {
  // With no noise prior the robust path reduces to the optimal linear
  // predictor: identical predictions on exact measurements.
  const linalg::Matrix a = random_matrix(12, 20, 8);
  const linalg::Vector mu(12, 400.0);
  const std::vector<int> rep{0, 3, 5, 7};
  const LinearPredictor lp = make_path_predictor(a, mu, rep);
  const auto rp = make_robust_path_predictor(a, mu, rep);
  ASSERT_EQ(rp.status.health, PredictorHealth::kOk);

  util::Rng rng(80);
  linalg::Vector x(20);
  for (int trial = 0; trial < 10; ++trial) {
    for (double& v : x) v = rng.normal();
    const linalg::Vector d = linalg::matvec(a, x);
    linalg::Vector meas(rep.size());
    for (std::size_t k = 0; k < rep.size(); ++k) {
      meas[k] = mu[static_cast<std::size_t>(rep[k])] +
                d[static_cast<std::size_t>(rep[k])];
    }
    const linalg::Vector want = lp.predict(meas);
    const RobustPrediction got = rp.predict(meas);
    EXPECT_EQ(got.health, PredictorHealth::kOk);
    ASSERT_EQ(got.values.size(), want.size());
    for (std::size_t i = 0; i < want.size(); ++i) {
      EXPECT_NEAR(got.values[i], want[i], 1e-7);
    }
  }
}

TEST(RobustPredictor, SizeMismatchAndAllInvalidFallBackToNominal) {
  const linalg::Matrix a = random_matrix(8, 12, 9);
  const linalg::Vector mu(8, 250.0);
  const auto p = make_robust_path_predictor(a, mu, {0, 1, 2});
  // Wrong measurement count: nominal fallback, no throw.
  EXPECT_NO_THROW({
    const RobustPrediction pr = p.predict(linalg::Vector{1.0});
    EXPECT_EQ(pr.health, PredictorHealth::kFailed);
    EXPECT_EQ(pr.values, p.base.mu_rem);
  });
  // All slots invalid on this die.
  const linalg::Vector meas(3, 100.0);
  const std::vector<char> none(3, 0);
  const RobustPrediction pr = p.predict(meas, none);
  EXPECT_EQ(pr.health, PredictorHealth::kFailed);
  EXPECT_EQ(pr.values, p.base.mu_rem);
  EXPECT_EQ(pr.missing.size(), 3u);
}

TEST(RobustPredictor, NonFiniteMeasurementIsScreenedAsMissing) {
  const linalg::Matrix a = random_matrix(8, 12, 10);
  const linalg::Vector mu(8, 250.0);
  RobustOptions opt;
  opt.measurement_sigma_ps = 1.0;
  const auto p = make_robust_path_predictor(a, mu, {0, 1, 2, 3}, {}, opt);
  linalg::Vector meas = p.base.mu_meas;
  meas[1] = std::numeric_limits<double>::quiet_NaN();
  const RobustPrediction pr = p.predict(meas);
  EXPECT_EQ(pr.missing, (std::vector<int>{1}));
  EXPECT_EQ(pr.health, PredictorHealth::kDegraded);
  for (double v : pr.values) EXPECT_TRUE(std::isfinite(v));
}

TEST(RobustPredictor, GrossOutlierIsScreenedAndContained) {
  const linalg::Matrix a = random_matrix(14, 20, 11);
  const linalg::Vector mu(14, 500.0);
  const std::vector<int> rep{0, 2, 4, 6, 8, 10};
  RobustOptions opt;
  opt.measurement_sigma_ps = 1.0;
  const auto rp = make_robust_path_predictor(a, mu, rep, {}, opt);
  ASSERT_TRUE(rp.status.usable());

  util::Rng rng(110);
  linalg::Vector x(20);
  for (double& v : x) v = rng.normal();
  const linalg::Vector d = linalg::matvec(a, x);
  linalg::Vector clean(rep.size());
  for (std::size_t k = 0; k < rep.size(); ++k) {
    clean[k] = mu[static_cast<std::size_t>(rep[k])] +
               d[static_cast<std::size_t>(rep[k])];
  }
  const RobustPrediction base = rp.predict(clean);

  linalg::Vector corrupted = clean;
  corrupted[2] += 500.0;  // absurd tester reading on one slot
  const RobustPrediction robust = rp.predict(corrupted);
  EXPECT_NE(std::find(robust.screened.begin(), robust.screened.end(), 2),
            robust.screened.end());
  EXPECT_EQ(robust.health, PredictorHealth::kDegraded);

  // Naive linear map on the same corrupted vector, for contrast.
  const linalg::Vector naive = rp.base.predict(corrupted);
  double err_robust = 0.0, err_naive = 0.0;
  for (std::size_t i = 0; i < base.values.size(); ++i) {
    err_robust = std::max(err_robust,
                          std::abs(robust.values[i] - base.values[i]));
    err_naive = std::max(err_naive, std::abs(naive[i] - base.values[i]));
  }
  // Screening must keep the corrupted prediction close to the clean one
  // while the naive map is dragged far off by the outlier.
  EXPECT_LT(err_robust, 0.2 * err_naive);
}

TEST(RobustPredictor, ErrorSigmasInflatedByNoisePrior) {
  const linalg::Matrix a = random_matrix(10, 14, 12);
  const linalg::Vector mu(10, 350.0);
  RobustOptions opt;
  opt.measurement_sigma_ps = 5.0;
  const auto p = make_robust_path_predictor(a, mu, {0, 1, 2}, {}, opt);
  const linalg::Vector clean = p.base.error_sigmas();
  const linalg::Vector noisy = p.error_sigmas();
  ASSERT_EQ(clean.size(), noisy.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_GE(noisy[i], clean[i]);
  }
  EXPECT_GE(p.status.sigma_inflation, 1.0);
}

// ---------------------------------------------------------------------------
// Fault-injected Monte Carlo: determinism, degradation, robust vs naive.
// ---------------------------------------------------------------------------

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<variation::SpatialModel> spatial;
  std::unique_ptr<variation::VariationModel> model;

  explicit Fixture(std::size_t max_paths = 80)
      : nl(circuit::generate_benchmark("s1196")) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = max_paths});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<variation::SpatialModel>(3);
    model = std::make_unique<variation::VariationModel>(
        *tg, *spatial, paths, dec, variation::VariationOptions{});
  }
};

RobustPredictor fixture_predictor(const Fixture& f, std::size_t n_rep,
                                  const FaultSpec& spec,
                                  const std::vector<int>& dead = {}) {
  const SubsetSelector sel(f.model->a());
  const auto order = sel.select(std::min(sel.rank(), n_rep + 8));
  std::vector<int> rep(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(n_rep, order.size())));
  RobustOptions opt;
  opt.backup_order = order;
  opt.measurement_sigma_ps =
      expected_noise_sigma(spec, f.model->mu_paths());
  return make_robust_path_predictor(f.model->a(), f.model->mu_paths(), rep,
                                    dead, opt);
}

TEST(FaultyMonteCarlo, BitIdenticalAcrossThreadCounts) {
  Fixture f;
  FaultyMcOptions opt;
  opt.mc.samples = 256;
  opt.mc.chunk = 32;
  opt.mc.seed = 123;
  opt.faults.noise_sigma_frac = 0.01;
  opt.faults.outlier_rate = 0.1;
  opt.faults.dropout_rate = 0.1;
  const RobustPredictor p = fixture_predictor(f, 8, opt.faults);
  ASSERT_TRUE(p.status.usable());

  const std::size_t saved_threads = util::thread_count();
  std::vector<FaultyMcMetrics> runs;
  for (std::size_t nt : {1u, 4u, 8u}) {
    util::set_threads(nt);
    runs.push_back(evaluate_predictor_under_faults(*f.model, p, opt));
  }
  util::set_threads(saved_threads);
  for (std::size_t k = 1; k < runs.size(); ++k) {
    // Exact equality: fault schedules and samples are keyed on the global
    // die index, partials reduced in fixed chunk order.
    EXPECT_EQ(runs[0].metrics.e1, runs[k].metrics.e1);
    EXPECT_EQ(runs[0].metrics.e2, runs[k].metrics.e2);
    EXPECT_EQ(runs[0].metrics.worst_eps, runs[k].metrics.worst_eps);
    EXPECT_EQ(runs[0].failed_dies, runs[k].failed_dies);
    EXPECT_EQ(runs[0].mean_screened, runs[k].mean_screened);
    EXPECT_EQ(runs[0].mean_missing, runs[k].mean_missing);
    EXPECT_EQ(runs[0].mean_outliers, runs[k].mean_outliers);
    ASSERT_EQ(runs[0].metrics.eps_max.size(), runs[k].metrics.eps_max.size());
    for (std::size_t i = 0; i < runs[0].metrics.eps_max.size(); ++i) {
      EXPECT_EQ(runs[0].metrics.eps_max[i], runs[k].metrics.eps_max[i]);
      EXPECT_EQ(runs[0].metrics.eps_mean[i], runs[k].metrics.eps_mean[i]);
    }
  }
}

TEST(FaultyMonteCarlo, CleanFaultsMatchCleanEvaluator) {
  // A clean FaultSpec and zero noise prior reproduce the classic protocol.
  Fixture f(40);
  const SubsetSelector sel(f.model->a());
  const auto rep = sel.select(5);
  const LinearPredictor lp =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  const auto rp =
      make_robust_path_predictor(f.model->a(), f.model->mu_paths(), rep);
  FaultyMcOptions opt;
  opt.mc.samples = 300;
  const McMetrics clean = evaluate_predictor(*f.model, lp, opt.mc);
  const FaultyMcMetrics faulty =
      evaluate_predictor_under_faults(*f.model, rp, opt);
  EXPECT_NEAR(faulty.metrics.e1, clean.e1, 1e-9);
  EXPECT_NEAR(faulty.metrics.e2, clean.e2, 1e-9);
  EXPECT_EQ(faulty.failed_dies, 0u);
  EXPECT_DOUBLE_EQ(faulty.mean_missing, 0.0);
}

TEST(FaultyMonteCarlo, RobustBeatsNaiveUnderOutliers) {
  Fixture f;
  FaultSpec spec;
  spec.noise_sigma_frac = 0.01;
  spec.outlier_rate = 0.2;
  spec.outlier_scale = 20.0;
  const RobustPredictor p = fixture_predictor(f, 8, spec);
  ASSERT_TRUE(p.status.usable());

  FaultyMcOptions robust_opt;
  robust_opt.mc.samples = 200;
  robust_opt.faults = spec;
  FaultyMcOptions naive_opt = robust_opt;
  naive_opt.naive = true;

  const FaultyMcMetrics robust =
      evaluate_predictor_under_faults(*f.model, p, robust_opt);
  const FaultyMcMetrics naive =
      evaluate_predictor_under_faults(*f.model, p, naive_opt);
  EXPECT_GT(robust.mean_screened, 0.0);
  EXPECT_GT(robust.mean_outliers, 0.0);
  EXPECT_LT(robust.metrics.e1, naive.metrics.e1);
  EXPECT_LT(robust.metrics.e2, naive.metrics.e2);
}

TEST(FaultyMonteCarlo, DeadRepPathDegradesGracefully) {
  Fixture f;
  FaultSpec spec = default_fault_spec();  // dead_slots = {0}
  const SubsetSelector sel(f.model->a());
  const auto order = sel.select(std::min<std::size_t>(sel.rank(), 16));
  const std::vector<int> rep(order.begin(), order.begin() + 8);
  // The robust flow excludes the dead path at build time and evaluates with
  // the dead slot stripped from the schedule (the rebuilt predictor's
  // measurement vector no longer contains it).
  RobustOptions opt;
  opt.backup_order = order;
  opt.measurement_sigma_ps = expected_noise_sigma(spec, f.model->mu_paths());
  const auto p = make_robust_path_predictor(
      f.model->a(), f.model->mu_paths(), rep, {rep[0]}, opt);
  EXPECT_EQ(p.status.health, PredictorHealth::kDegraded);
  EXPECT_EQ(p.status.dropped_paths, (std::vector<int>{rep[0]}));
  EXPECT_EQ(p.status.promoted_paths.size(), 1u);

  FaultyMcOptions mc;
  mc.mc.samples = 200;
  mc.faults = without_dead_slots(spec);
  FaultyMcMetrics m;
  EXPECT_NO_THROW(m = evaluate_predictor_under_faults(*f.model, p, mc));
  EXPECT_EQ(m.failed_dies, 0u);
  EXPECT_GT(m.metrics.e1, 0.0);
  EXPECT_LT(m.metrics.e1, 1.0);  // still a sane predictor, not garbage
}

TEST(FaultyMonteCarlo, PerFaultModeBreakdownSplitsRejections) {
  Fixture f;
  FaultyMcOptions opt;
  opt.mc.samples = 256;
  opt.mc.seed = 5;
  opt.faults.noise_sigma_frac = 0.01;
  opt.faults.outlier_rate = 0.1;
  opt.faults.dropout_rate = 0.1;
  opt.faults.dead_slots = {0};
  // Build against the un-stripped schedule: slot 0 stays in the measurement
  // vector and is killed on every die, so mean_dead must be exactly 1.
  const RobustPredictor p = fixture_predictor(f, 8, opt.faults);
  ASSERT_TRUE(p.status.usable());

  util::telemetry::reset();
  const FaultyMcMetrics m = evaluate_predictor_under_faults(*f.model, p, opt);
  EXPECT_DOUBLE_EQ(m.mean_dead, 1.0);
  EXPECT_GT(m.mean_dropout, 0.0);
  // The per-mode splits tile the aggregates they refine.
  EXPECT_NEAR(m.mean_missing, m.mean_dead + m.mean_dropout, 1e-12);
  EXPECT_NEAR(m.mean_screened,
              m.mean_screened_outlier + m.mean_screened_noise, 1e-12);
  // 10x-sigma injected outliers, not plain sensor noise, dominate screening.
  EXPECT_GT(m.mean_screened_outlier, m.mean_screened_noise);

  // Telemetry mirrors the same per-mode counts (summed over dies).
  const auto snap = util::telemetry::snapshot();
  auto counter = [&](const std::string& name) -> double {
    for (const auto& c : snap.counters) {
      if (c.name == name) return static_cast<double>(c.value);
    }
    return -1.0;
  };
  const double n = static_cast<double>(opt.mc.samples);
  EXPECT_NEAR(counter("core.mc.reject_outlier"),
              m.mean_screened_outlier * n, 0.5);
  EXPECT_NEAR(counter("core.mc.reject_noise"),
              m.mean_screened_noise * n, 0.5);
  EXPECT_NEAR(counter("core.mc.slots_dead"), m.mean_dead * n, 0.5);
  EXPECT_NEAR(counter("core.mc.slots_dropout"), m.mean_dropout * n, 0.5);
}

TEST(FaultyMonteCarlo, AllSlotsDeadOrDroppedGivesStructuredFailure) {
  // Regression: a die with no usable slot must surface as a structured
  // failed prediction (nominal fallback + full missing list), never as a
  // degenerate zero-size solve.
  Fixture f;
  FaultyMcOptions opt;
  opt.mc.samples = 32;
  opt.mc.seed = 9;
  const RobustPredictor p = fixture_predictor(f, 8, opt.faults);
  ASSERT_TRUE(p.status.usable());
  const std::size_t n_meas = p.base.mu_meas.size();
  for (std::size_t i = 0; i < n_meas; ++i) {
    opt.faults.dead_slots.push_back(static_cast<int>(i));
  }

  // Die-level contract via the fault injector itself.
  const NoisyMeasurements nm =
      apply_faults(p.base.mu_meas, p.base.mu_meas, opt.faults, 0);
  EXPECT_EQ(static_cast<std::size_t>(nm.dead), n_meas);
  const RobustPrediction rp = p.predict(nm.values, nm.valid);
  EXPECT_EQ(rp.health, PredictorHealth::kFailed);
  EXPECT_EQ(rp.missing.size(), n_meas);
  for (double v : rp.values) EXPECT_TRUE(std::isfinite(v));

  // Evaluation-level contract: every die fails, metrics stay finite.
  FaultyMcMetrics m;
  EXPECT_NO_THROW(m = evaluate_predictor_under_faults(*f.model, p, opt));
  EXPECT_EQ(m.failed_dies, opt.mc.samples);
  EXPECT_DOUBLE_EQ(m.mean_dead, static_cast<double>(n_meas));
  EXPECT_TRUE(std::isfinite(m.metrics.e1));

  // Same through per-die dropout instead of the static dead list.
  FaultyMcOptions drop;
  drop.mc.samples = 32;
  drop.faults.dropout_rate = 1.0;
  EXPECT_NO_THROW(m = evaluate_predictor_under_faults(*f.model, p, drop));
  EXPECT_EQ(m.failed_dies, drop.mc.samples);
  EXPECT_DOUBLE_EQ(m.mean_dropout, static_cast<double>(n_meas));
}

TEST(FaultyMonteCarlo, NoLinalgEscapeOnPathologicalInputs) {
  // Rank-deficient sensitivities + full dropout + dead slots: the evaluation
  // must stay defined (possibly all-failed dies), never throw.
  const linalg::Matrix a =
      linalg::multiply(random_matrix(10, 2, 13), random_matrix(2, 8, 14));
  const linalg::Vector mu(10, 100.0);
  const auto p = make_robust_path_predictor(a, mu, {0, 1, 2, 3});
  EXPECT_TRUE(p.status.usable());  // degraded via ridge, but usable

  Fixture f(20);
  // Unusable predictor: every die is a failed die, metrics stay zero.
  const auto failed =
      make_robust_path_predictor(f.model->a(), f.model->mu_paths(), {});
  FaultyMcOptions opt;
  opt.mc.samples = 50;
  opt.faults = default_fault_spec();
  FaultyMcMetrics m;
  EXPECT_NO_THROW(m = evaluate_predictor_under_faults(*f.model, failed, opt));
  EXPECT_EQ(m.failed_dies, 50u);
  EXPECT_EQ(m.metrics.e1, 0.0);

  // Full dropout on a usable predictor: all dies fall back to nominal.
  const SubsetSelector sel(f.model->a());
  const auto rp = make_robust_path_predictor(f.model->a(),
                                             f.model->mu_paths(), sel.select(4));
  FaultyMcOptions drop;
  drop.mc.samples = 50;
  drop.faults.dropout_rate = 1.0;
  EXPECT_NO_THROW(m = evaluate_predictor_under_faults(*f.model, rp, drop));
  EXPECT_EQ(m.failed_dies, 50u);

  // Zero samples: defined empty result.
  FaultyMcOptions none;
  none.mc.samples = 0;
  EXPECT_NO_THROW(m = evaluate_predictor_under_faults(*f.model, rp, none));
  EXPECT_EQ(m.metrics.samples, 0u);
}

}  // namespace
}  // namespace repro::core
