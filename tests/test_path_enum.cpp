#include "timing/path_enum.h"

#include <gtest/gtest.h>

#include <set>

#include "circuit/generator.h"
#include "test_helpers.h"
#include "timing/sta.h"

namespace repro::timing {
namespace {

TEST(PathEnum, CountPathsChain) {
  const circuit::Netlist nl = test::chain_netlist(6);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  EXPECT_DOUBLE_EQ(count_paths(tg), 1.0);
}

TEST(PathEnum, CountPathsDiamond) {
  const circuit::Netlist nl = test::diamond_netlist(7);
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  EXPECT_DOUBLE_EQ(count_paths(tg), 7.0);
}

TEST(PathEnum, CountPathsFigure1) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  EXPECT_DOUBLE_EQ(count_paths(tg), 4.0);
}

TEST(PathEnum, EnumeratesAllPathsWhenBudgetAllows) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 100});
  EXPECT_EQ(paths.size(), 4u);
  // All distinct.
  std::set<std::vector<circuit::GateId>> uniq;
  for (const Path& p : paths) uniq.insert(p.gates);
  EXPECT_EQ(uniq.size(), 4u);
}

TEST(PathEnum, PathsAreValidLaunchToCaptureWalks) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 200});
  ASSERT_FALSE(paths.empty());
  for (const Path& p : paths) {
    ASSERT_GE(p.gates.size(), 2u);
    EXPECT_EQ(nl.gate(p.gates.front()).type, circuit::GateType::kInput);
    EXPECT_EQ(nl.gate(p.gates.back()).type, circuit::GateType::kOutput);
    for (std::size_t i = 0; i + 1 < p.gates.size(); ++i) {
      const auto& fo = nl.gate(p.gates[i]).fanout;
      EXPECT_NE(std::find(fo.begin(), fo.end(), p.gates[i + 1]), fo.end());
    }
  }
}

TEST(PathEnum, ScoresNonIncreasing) {
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 500});
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].score, paths[i].score - 1e-9);
  }
}

TEST(PathEnum, FirstPathIsNominalCriticalAtZeroSigmaWeight) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  PathEnumOptions opt;
  opt.max_paths = 1;
  opt.sigma_weight = 0.0;
  const auto paths = enumerate_worst_paths(tg, opt);
  ASSERT_EQ(paths.size(), 1u);
  const StaResult sta = run_sta(tg);
  EXPECT_NEAR(paths.front().score, sta.circuit_delay, 1e-9);
  EXPECT_NEAR(path_delay_ps(tg, paths.front().gates), sta.circuit_delay,
              1e-9);
}

TEST(PathEnum, ScoreEqualsSumOfGateScores) {
  const circuit::Netlist nl = test::figure1_netlist();
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  PathEnumOptions opt;
  opt.sigma_weight = 2.0;
  const auto paths = enumerate_worst_paths(tg, opt);
  for (const Path& p : paths) {
    double expect = 0.0;
    for (circuit::GateId id : p.gates) {
      expect += tg.gate_delay_ps(id) + 2.0 * tg.gate_sigma_total_ps(id);
    }
    EXPECT_NEAR(p.score, expect, 1e-9);
  }
}

TEST(PathEnum, MaxPathsRespected) {
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths(tg, {.max_paths = 37});
  EXPECT_EQ(paths.size(), 37u);
}

TEST(PathEnum, PerEndpointBalancesCoverage) {
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  PathEnumOptions opt;
  opt.max_paths = 790;  // 10 per endpoint for 79 captures
  const auto global_paths = enumerate_worst_paths(tg, opt);
  const auto balanced = enumerate_worst_paths_per_endpoint(tg, opt);
  auto distinct_endpoints = [&](const std::vector<Path>& ps) {
    std::set<circuit::GateId> eps;
    for (const Path& p : ps) eps.insert(p.gates.back());
    return eps.size();
  };
  // Global enumeration drowns in the worst cone; the balanced variant must
  // reach (nearly) every capture point.
  EXPECT_GT(distinct_endpoints(balanced), distinct_endpoints(global_paths));
  EXPECT_GE(distinct_endpoints(balanced), nl.outputs().size() / 2);
}

TEST(PathEnum, PerEndpointScoresSortedAndValid) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = enumerate_worst_paths_per_endpoint(tg, {.max_paths = 300});
  ASSERT_FALSE(paths.empty());
  EXPECT_LE(paths.size(), 300u);
  for (std::size_t i = 1; i < paths.size(); ++i) {
    EXPECT_GE(paths[i - 1].score, paths[i].score - 1e-9);
  }
  for (const Path& p : paths) {
    double expect = 0.0;
    for (circuit::GateId id : p.gates) {
      expect += tg.gate_delay_ps(id) + 3.0 * tg.gate_sigma_total_ps(id);
    }
    EXPECT_NEAR(p.score, expect, 1e-9);
  }
}

TEST(PathEnum, CoveragePathsTouchEveryGate) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = worst_path_through_each_gate(tg);
  std::set<circuit::GateId> covered;
  for (const Path& p : paths) {
    for (circuit::GateId g : p.gates) covered.insert(g);
  }
  for (std::size_t i = 0; i < nl.size(); ++i) {
    const auto id = static_cast<circuit::GateId>(i);
    if (circuit::is_combinational(nl.gate(id).type)) {
      EXPECT_TRUE(covered.contains(id)) << nl.gate(id).name;
    }
  }
}

TEST(PathEnum, CoveragePathsAreValidAndDeduplicated) {
  circuit::Netlist nl = circuit::generate_benchmark("s1423");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto paths = worst_path_through_each_gate(tg);
  EXPECT_LE(paths.size(), nl.combinational_count());
  std::set<std::vector<circuit::GateId>> uniq;
  for (const Path& p : paths) {
    EXPECT_EQ(nl.gate(p.gates.front()).type, circuit::GateType::kInput);
    EXPECT_EQ(nl.gate(p.gates.back()).type, circuit::GateType::kOutput);
    for (std::size_t i = 0; i + 1 < p.gates.size(); ++i) {
      const auto& fo = nl.gate(p.gates[i]).fanout;
      ASSERT_NE(std::find(fo.begin(), fo.end(), p.gates[i + 1]), fo.end());
    }
    uniq.insert(p.gates);
  }
  EXPECT_EQ(uniq.size(), paths.size());
}

TEST(PathEnum, CoverageWorstPathMatchesGlobalWorst) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  const auto coverage = worst_path_through_each_gate(tg);
  const auto global_paths = enumerate_worst_paths(tg, {.max_paths = 1});
  ASSERT_FALSE(coverage.empty());
  ASSERT_FALSE(global_paths.empty());
  // The best coverage path is the overall worst path.
  EXPECT_NEAR(coverage.front().score, global_paths.front().score, 1e-9);
}

TEST(PathEnum, MinScoreFractionStopsEarly) {
  circuit::Netlist nl = circuit::generate_benchmark("s1196");
  const circuit::GateLibrary lib;
  const TimingGraph tg(nl, lib);
  PathEnumOptions opt;
  opt.max_paths = 100000;
  opt.min_score_fraction = 0.98;
  const auto paths = enumerate_worst_paths(tg, opt);
  ASSERT_FALSE(paths.empty());
  for (const Path& p : paths) {
    EXPECT_GE(p.score, 0.98 * paths.front().score - 1e-9);
  }
  EXPECT_LT(paths.size(), 100000u);
}

}  // namespace
}  // namespace repro::timing
