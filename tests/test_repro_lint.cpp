// The linter is itself under test: the fixtures in tests/lint_fixtures/ are
// deliberate violations with known counts, and the tree itself must scan
// clean.  LINT_FIXTURE_DIR and REPRO_SOURCE_ROOT come from the build system.
#include "lint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

using repro_lint::Finding;
using repro_lint::Options;
using repro_lint::Report;

// Fixture scans must not honor the default skip list (it exists precisely to
// hide the fixtures from tree scans).
Options fixture_options() {
  Options options;
  options.roots = {LINT_FIXTURE_DIR};
  options.skip.clear();
  return options;
}

std::map<std::string, int> count_by_check(const Report& report) {
  std::map<std::string, int> counts;
  for (const Finding& f : report.findings) ++counts[f.check];
  return counts;
}

TEST(ReproLint, FixtureCountsAreExact) {
  const Report report = repro_lint::run_lint(fixture_options());
  const std::map<std::string, int> counts = count_by_check(report);

  EXPECT_EQ(counts.at("determinism"), 6);
  EXPECT_EQ(counts.at("parallel-rng"), 1);
  EXPECT_EQ(counts.at("parallel-telemetry"), 1);
  EXPECT_EQ(counts.at("contracts"), 1);
  EXPECT_EQ(counts.at("pragma-once"), 1);
  EXPECT_EQ(counts.at("banned-include"), 2);
  EXPECT_EQ(counts.at("include-order"), 2);
  EXPECT_EQ(counts.at("simd-confinement"), 5);
  // Cross-TU checks: AB/BA cycle (one finding per inverted edge) plus a
  // self-deadlocking re-lock; a direct send under lock plus one reached
  // through blocking_helper.cpp; two allocation sites in the kernel fixture
  // (dir-scoped) and two in the panel-provider fixture (name-scoped via
  // hot_alloc_functions).
  EXPECT_EQ(counts.at("lock-order"), 3);
  EXPECT_EQ(counts.at("blocking-under-lock"), 2);
  EXPECT_EQ(counts.at("cv-wait-predicate"), 1);
  EXPECT_EQ(counts.at("noexcept-boundary"), 1);
  EXPECT_EQ(counts.at("hot-path-alloc"), 4);
  EXPECT_EQ(report.findings.size(), 30u);
  // One determinism allow(), one contracts allow(), one simd-confinement
  // allow(), and one blocking-under-lock allow() in the fixtures.
  EXPECT_EQ(report.suppressed, 4);
  EXPECT_EQ(report.files_scanned, 17);
}

TEST(ReproLint, EveryCheckHasAFixtureTruePositive) {
  const Report report = repro_lint::run_lint(fixture_options());
  const std::map<std::string, int> counts = count_by_check(report);
  for (const char* check :
       {"determinism", "parallel-rng", "parallel-telemetry", "contracts",
        "pragma-once", "banned-include", "include-order", "simd-confinement",
        "lock-order", "blocking-under-lock", "cv-wait-predicate",
        "noexcept-boundary", "hot-path-alloc"}) {
    EXPECT_GT(counts.count(check), 0u) << "no true positive for " << check;
  }
}

// Every *_good.cpp fixture is the clean counterpart of a bad one: the checks
// must stay silent on the idiomatic pattern, or they are unusable as gates.
TEST(ReproLint, GoodFixturesAreClean) {
  const Report report = repro_lint::run_lint(fixture_options());
  for (const Finding& f : report.findings) {
    EXPECT_EQ(f.file.find("_good."), std::string::npos)
        << f.file << ":" << f.line << " [" << f.check << "] " << f.message;
  }
}

// The blocking-under-lock finding that goes through blocking_helper.cpp must
// report the cross-TU call chain: the frame under the lock, then the helper
// frame in the other file that actually blocks.
TEST(ReproLint, CrossTuFindingReportsCallChain) {
  const Report report = repro_lint::run_lint(fixture_options());
  bool seen = false;
  for (const Finding& f : report.findings) {
    if (f.check != "blocking-under-lock" ||
        f.message.find("send_all_frames") == std::string::npos) {
      continue;
    }
    seen = true;
    ASSERT_GE(f.chain.size(), 2u);
    EXPECT_NE(f.chain[0].find("blocking_lock_bad.cpp"), std::string::npos);
    EXPECT_NE(f.chain[1].find("blocking_helper.cpp"), std::string::npos);
  }
  EXPECT_TRUE(seen) << "cross-TU blocking finding missing";
}

TEST(ReproLint, DeterminismFlagsBannedSourcesNotSteadyClock) {
  Options options;
  const Report bad = repro_lint::lint_source(
      "probe.cpp", "int f() { return rand(); }\n", options);
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].check, "determinism");
  EXPECT_EQ(bad.findings[0].line, 1);

  const Report ok = repro_lint::lint_source(
      "probe.cpp",
      "auto t0 = std::chrono::steady_clock::now();\n", options);
  EXPECT_TRUE(ok.findings.empty());
}

TEST(ReproLint, SuppressionSameLineAndLineAboveAndFileWide) {
  Options options;
  const Report same_line = repro_lint::lint_source(
      "probe.cpp", "int x = rand();  // repro-lint: allow(determinism)\n",
      options);
  EXPECT_TRUE(same_line.findings.empty());
  EXPECT_EQ(same_line.suppressed, 1);

  const Report line_above = repro_lint::lint_source(
      "probe.cpp",
      "// repro-lint: allow(determinism)\nint x = rand();\n", options);
  EXPECT_TRUE(line_above.findings.empty());
  EXPECT_EQ(line_above.suppressed, 1);

  const Report file_wide = repro_lint::lint_source(
      "probe.cpp",
      "// repro-lint: allow-file(determinism)\n"
      "int x = rand();\nint y = rand();\n",
      options);
  EXPECT_TRUE(file_wide.findings.empty());
  EXPECT_EQ(file_wide.suppressed, 2);

  // A suppression names its check: allowing determinism does not silence a
  // different check on the same line.
  const Report wrong_check = repro_lint::lint_source(
      "probe.cpp", "int x = rand();  // repro-lint: allow(contracts)\n",
      options);
  EXPECT_EQ(wrong_check.findings.size(), 1u);
}

TEST(ReproLint, CanonicalParallelPatternIsClean) {
  Options options;
  // The monte_carlo.cpp shape: chunk-local stream, telemetry after the join.
  const Report report = repro_lint::lint_source(
      "probe.cpp",
      "void f(std::vector<double>& out) {\n"
      "  util::parallel_for(0, out.size(), 64,\n"
      "                     [&](std::size_t b, std::size_t e) {\n"
      "    for (std::size_t k = b; k < e; ++k) {\n"
      "      util::Rng rng = util::Rng::stream(7, k);\n"
      "      out[k] = rng.normal();\n"
      "    }\n"
      "  });\n"
      "  util::telemetry::count(\"f.samples\", out.size());\n"
      "}\n",
      options);
  EXPECT_TRUE(report.findings.empty());
}

TEST(ReproLint, ContractCheckScopedToContractDirs) {
  Options options;
  const std::string body =
      "namespace repro::core {\n"
      "double f(const linalg::Matrix& a) { return a(0, 0); }\n"
      "}\n";
  const Report in_scope =
      repro_lint::lint_source("src/core/probe.cpp", body, options);
  EXPECT_EQ(in_scope.findings.size(), 1u);
  EXPECT_EQ(in_scope.findings[0].check, "contracts");

  const Report out_of_scope =
      repro_lint::lint_source("src/timing/probe.cpp", body, options);
  EXPECT_TRUE(out_of_scope.findings.empty());
}

TEST(ReproLint, SimdConfinementScopedToSimdDirs) {
  Options options;
  const std::string body =
      "#include <immintrin.h>\n"
      "__m256d probe(const double* x) { return _mm256_loadu_pd(x); }\n";
  // The micro-kernel layer itself may use intrinsics freely.
  const Report exempt =
      repro_lint::lint_source("src/linalg/simd/probe.cpp", body, options);
  EXPECT_TRUE(exempt.findings.empty());

  const Report confined =
      repro_lint::lint_source("src/core/probe.cpp", body, options);
  ASSERT_EQ(confined.findings.size(), 3u);
  for (const Finding& f : confined.findings) {
    EXPECT_EQ(f.check, "simd-confinement");
  }
}

// Regression: unlock-then-relock of the same unique_lock (the PredictBatcher
// leader pattern) must not read as acquiring a mutex that is already held.
TEST(ReproLint, RelockAfterUnlockIsNotSelfDeadlock) {
  Options options;
  const Report report = repro_lint::lint_source(
      "probe.cpp",
      "#include <mutex>\n"
      "std::mutex mu;\n"
      "void pump() {\n"
      "  std::unique_lock<std::mutex> lk(mu);\n"
      "  lk.unlock();\n"
      "  lk.lock();\n"
      "}\n",
      options);
  EXPECT_TRUE(report.findings.empty());
}

// Regression: C++14 digit separators (65'536) must not open a char-literal
// scan that swallows the rest of the file — the hot-path-alloc finding after
// the literal has to survive.
TEST(ReproLint, DigitSeparatorDoesNotSwallowSource) {
  Options options;
  const Report report = repro_lint::lint_source(
      "src/linalg/simd/probe.cpp",
      "#include <vector>\n"
      "constexpr int kBlock = 65'536;\n"
      "void kernel(std::vector<double>& out) { out.push_back(0.0); }\n",
      options);
  ASSERT_EQ(report.findings.size(), 1u);
  EXPECT_EQ(report.findings[0].check, "hot-path-alloc");
  EXPECT_EQ(report.findings[0].line, 3);
}

// hot-path-alloc keys on configured directories and function names; the same
// allocation elsewhere is fine.
TEST(ReproLint, HotPathAllocScopedToKernelDirsAndFunctions) {
  Options options;
  const std::string body =
      "#include <vector>\n"
      "void helper(std::vector<double>& out) { out.push_back(0.0); }\n";
  const Report outside =
      repro_lint::lint_source("src/core/probe.cpp", body, options);
  EXPECT_TRUE(outside.findings.empty());

  const Report named = repro_lint::lint_source(
      "src/core/probe.cpp",
      "#include <vector>\n"
      "void gemm_packed(std::vector<double>& out) { out.push_back(0.0); }\n",
      options);
  ASSERT_EQ(named.findings.size(), 1u);
  EXPECT_EQ(named.findings[0].check, "hot-path-alloc");

  // Qualified entries ("MatrixPanelSource::fill_rows") bind to the method,
  // not to every function that happens to be called fill_rows.
  const Report method = repro_lint::lint_source(
      "src/core/probe.cpp",
      "#include <vector>\n"
      "struct MatrixPanelSource { void fill_rows(std::vector<double>& v); };\n"
      "void MatrixPanelSource::fill_rows(std::vector<double>& v) {\n"
      "  v.push_back(0.0);\n"
      "}\n"
      "void fill_rows(std::vector<double>& v) { v.push_back(0.0); }\n",
      options);
  ASSERT_EQ(method.findings.size(), 1u);
  EXPECT_EQ(method.findings[0].check, "hot-path-alloc");
  EXPECT_EQ(method.findings[0].line, 4);
}

TEST(ReproLint, CliExitCodes) {
  const std::string fixture_dir = LINT_FIXTURE_DIR;

  {
    const char* argv[] = {"repro_lint", "--bogus-flag"};
    EXPECT_EQ(repro_lint::run_cli(2, argv), 2);
  }
  {
    // The default skip list hides lint_fixtures, so pointing the CLI at the
    // fixture dir scans nothing: a usage error, not a silent pass.
    const char* argv[] = {"repro_lint", fixture_dir.c_str(),
                          "--error-on-findings"};
    EXPECT_EQ(repro_lint::run_cli(3, argv), 2);
  }

  // Findings drive the exit code only under --error-on-findings.
  const std::string dirty = testing::TempDir() + "repro_lint_dirty.cpp";
  {
    std::ofstream out(dirty);
    out << "int x = rand();\n";
  }
  {
    const char* argv[] = {"repro_lint", dirty.c_str(), "--error-on-findings"};
    EXPECT_EQ(repro_lint::run_cli(3, argv), 1);
  }
  {
    const char* argv[] = {"repro_lint", dirty.c_str()};
    EXPECT_EQ(repro_lint::run_cli(2, argv), 0);
  }
  std::remove(dirty.c_str());

  const std::string clean = testing::TempDir() + "repro_lint_clean.cpp";
  {
    std::ofstream out(clean);
    out << "int answer() { return 42; }\n";
  }
  {
    const char* argv[] = {"repro_lint", clean.c_str(), "--error-on-findings"};
    EXPECT_EQ(repro_lint::run_cli(3, argv), 0);
  }
  std::remove(clean.c_str());
}

TEST(ReproLint, SourceTreeIsClean) {
  const char* argv[] = {"repro_lint", "--root", REPRO_SOURCE_ROOT,
                        "--error-on-findings"};
  EXPECT_EQ(repro_lint::run_cli(4, argv), 0);
}

}  // namespace
