// The linter is itself under test: the fixtures in tests/lint_fixtures/ are
// deliberate violations with known counts, and the tree itself must scan
// clean.  LINT_FIXTURE_DIR and REPRO_SOURCE_ROOT come from the build system.
#include "lint.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <string>
#include <vector>

namespace {

using repro_lint::Finding;
using repro_lint::Options;
using repro_lint::Report;

// Fixture scans must not honor the default skip list (it exists precisely to
// hide the fixtures from tree scans).
Options fixture_options() {
  Options options;
  options.roots = {LINT_FIXTURE_DIR};
  options.skip.clear();
  return options;
}

std::map<std::string, int> count_by_check(const Report& report) {
  std::map<std::string, int> counts;
  for (const Finding& f : report.findings) ++counts[f.check];
  return counts;
}

TEST(ReproLint, FixtureCountsAreExact) {
  const Report report = repro_lint::run_lint(fixture_options());
  const std::map<std::string, int> counts = count_by_check(report);

  EXPECT_EQ(counts.at("determinism"), 6);
  EXPECT_EQ(counts.at("parallel-rng"), 1);
  EXPECT_EQ(counts.at("parallel-telemetry"), 1);
  EXPECT_EQ(counts.at("contracts"), 1);
  EXPECT_EQ(counts.at("pragma-once"), 1);
  EXPECT_EQ(counts.at("banned-include"), 2);
  EXPECT_EQ(counts.at("include-order"), 2);
  EXPECT_EQ(counts.at("simd-confinement"), 5);
  EXPECT_EQ(report.findings.size(), 19u);
  // One determinism allow(), one contracts allow(), and one
  // simd-confinement allow() in the fixtures.
  EXPECT_EQ(report.suppressed, 3);
  EXPECT_EQ(report.files_scanned, 5);
}

TEST(ReproLint, EveryCheckHasAFixtureTruePositive) {
  const Report report = repro_lint::run_lint(fixture_options());
  const std::map<std::string, int> counts = count_by_check(report);
  for (const char* check :
       {"determinism", "parallel-rng", "parallel-telemetry", "contracts",
        "pragma-once", "banned-include", "include-order",
        "simd-confinement"}) {
    EXPECT_GT(counts.count(check), 0u) << "no true positive for " << check;
  }
}

TEST(ReproLint, DeterminismFlagsBannedSourcesNotSteadyClock) {
  Options options;
  const Report bad = repro_lint::lint_source(
      "probe.cpp", "int f() { return rand(); }\n", options);
  ASSERT_EQ(bad.findings.size(), 1u);
  EXPECT_EQ(bad.findings[0].check, "determinism");
  EXPECT_EQ(bad.findings[0].line, 1);

  const Report ok = repro_lint::lint_source(
      "probe.cpp",
      "auto t0 = std::chrono::steady_clock::now();\n", options);
  EXPECT_TRUE(ok.findings.empty());
}

TEST(ReproLint, SuppressionSameLineAndLineAboveAndFileWide) {
  Options options;
  const Report same_line = repro_lint::lint_source(
      "probe.cpp", "int x = rand();  // repro-lint: allow(determinism)\n",
      options);
  EXPECT_TRUE(same_line.findings.empty());
  EXPECT_EQ(same_line.suppressed, 1);

  const Report line_above = repro_lint::lint_source(
      "probe.cpp",
      "// repro-lint: allow(determinism)\nint x = rand();\n", options);
  EXPECT_TRUE(line_above.findings.empty());
  EXPECT_EQ(line_above.suppressed, 1);

  const Report file_wide = repro_lint::lint_source(
      "probe.cpp",
      "// repro-lint: allow-file(determinism)\n"
      "int x = rand();\nint y = rand();\n",
      options);
  EXPECT_TRUE(file_wide.findings.empty());
  EXPECT_EQ(file_wide.suppressed, 2);

  // A suppression names its check: allowing determinism does not silence a
  // different check on the same line.
  const Report wrong_check = repro_lint::lint_source(
      "probe.cpp", "int x = rand();  // repro-lint: allow(contracts)\n",
      options);
  EXPECT_EQ(wrong_check.findings.size(), 1u);
}

TEST(ReproLint, CanonicalParallelPatternIsClean) {
  Options options;
  // The monte_carlo.cpp shape: chunk-local stream, telemetry after the join.
  const Report report = repro_lint::lint_source(
      "probe.cpp",
      "void f(std::vector<double>& out) {\n"
      "  util::parallel_for(0, out.size(), 64,\n"
      "                     [&](std::size_t b, std::size_t e) {\n"
      "    for (std::size_t k = b; k < e; ++k) {\n"
      "      util::Rng rng = util::Rng::stream(7, k);\n"
      "      out[k] = rng.normal();\n"
      "    }\n"
      "  });\n"
      "  util::telemetry::count(\"f.samples\", out.size());\n"
      "}\n",
      options);
  EXPECT_TRUE(report.findings.empty());
}

TEST(ReproLint, ContractCheckScopedToContractDirs) {
  Options options;
  const std::string body =
      "namespace repro::core {\n"
      "double f(const linalg::Matrix& a) { return a(0, 0); }\n"
      "}\n";
  const Report in_scope =
      repro_lint::lint_source("src/core/probe.cpp", body, options);
  EXPECT_EQ(in_scope.findings.size(), 1u);
  EXPECT_EQ(in_scope.findings[0].check, "contracts");

  const Report out_of_scope =
      repro_lint::lint_source("src/timing/probe.cpp", body, options);
  EXPECT_TRUE(out_of_scope.findings.empty());
}

TEST(ReproLint, SimdConfinementScopedToSimdDirs) {
  Options options;
  const std::string body =
      "#include <immintrin.h>\n"
      "__m256d probe(const double* x) { return _mm256_loadu_pd(x); }\n";
  // The micro-kernel layer itself may use intrinsics freely.
  const Report exempt =
      repro_lint::lint_source("src/linalg/simd/probe.cpp", body, options);
  EXPECT_TRUE(exempt.findings.empty());

  const Report confined =
      repro_lint::lint_source("src/core/probe.cpp", body, options);
  ASSERT_EQ(confined.findings.size(), 3u);
  for (const Finding& f : confined.findings) {
    EXPECT_EQ(f.check, "simd-confinement");
  }
}

TEST(ReproLint, CliExitCodes) {
  const std::string fixture_dir = LINT_FIXTURE_DIR;

  {
    const char* argv[] = {"repro_lint", "--bogus-flag"};
    EXPECT_EQ(repro_lint::run_cli(2, argv), 2);
  }
  {
    // The default skip list hides lint_fixtures, so pointing the CLI at the
    // fixture dir scans nothing: a usage error, not a silent pass.
    const char* argv[] = {"repro_lint", fixture_dir.c_str(),
                          "--error-on-findings"};
    EXPECT_EQ(repro_lint::run_cli(3, argv), 2);
  }

  // Findings drive the exit code only under --error-on-findings.
  const std::string dirty = testing::TempDir() + "repro_lint_dirty.cpp";
  {
    std::ofstream out(dirty);
    out << "int x = rand();\n";
  }
  {
    const char* argv[] = {"repro_lint", dirty.c_str(), "--error-on-findings"};
    EXPECT_EQ(repro_lint::run_cli(3, argv), 1);
  }
  {
    const char* argv[] = {"repro_lint", dirty.c_str()};
    EXPECT_EQ(repro_lint::run_cli(2, argv), 0);
  }
  std::remove(dirty.c_str());

  const std::string clean = testing::TempDir() + "repro_lint_clean.cpp";
  {
    std::ofstream out(clean);
    out << "int answer() { return 42; }\n";
  }
  {
    const char* argv[] = {"repro_lint", clean.c_str(), "--error-on-findings"};
    EXPECT_EQ(repro_lint::run_cli(3, argv), 0);
  }
  std::remove(clean.c_str());
}

TEST(ReproLint, SourceTreeIsClean) {
  const char* argv[] = {"repro_lint", "--root", REPRO_SOURCE_ROOT,
                        "--error-on-findings"};
  EXPECT_EQ(repro_lint::run_cli(4, argv), 0);
}

}  // namespace
