#include "util/telemetry.h"

#include <gtest/gtest.h>

#include <cctype>
#include <cstddef>
#include <functional>
#include <limits>
#include <string>
#include <string_view>

#include "util/json.h"
#include "util/thread_pool.h"

namespace repro::util::telemetry {
namespace {

// Every test starts from an empty, enabled registry and leaves it enabled
// (the build default) so test order does not matter.
class TelemetryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    set_enabled(true);
    reset();
  }
  void TearDown() override {
    set_enabled(true);
    reset();
  }
};

const CounterSample* find_counter(const Snapshot& s, std::string_view name) {
  for (const CounterSample& c : s.counters) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

const SpanSample* find_span(const Snapshot& s, std::string_view name) {
  for (const SpanSample& sp : s.spans) {
    if (sp.name == name) return &sp;
  }
  return nullptr;
}

TEST_F(TelemetryTest, CountersAccumulate) {
  count("test.a");
  count("test.a", 4);
  count("test.b", 10);
  const Snapshot s = snapshot();
  ASSERT_EQ(s.counters.size(), 2u);
  const CounterSample* a = find_counter(s, "test.a");
  const CounterSample* b = find_counter(s, "test.b");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->value, 5u);
  EXPECT_EQ(b->value, 10u);
}

TEST_F(TelemetryTest, GaugeKeepsLatestValue) {
  set_gauge("test.g", 1.5);
  set_gauge("test.g", -2.25);
  const Snapshot s = snapshot();
  ASSERT_EQ(s.gauges.size(), 1u);
  EXPECT_EQ(s.gauges[0].name, "test.g");
  EXPECT_DOUBLE_EQ(s.gauges[0].value, -2.25);
}

TEST_F(TelemetryTest, SpansAggregatePerName) {
  for (int i = 0; i < 3; ++i) {
    Span span("test.phase");
  }
  const Snapshot s = snapshot();
  const SpanSample* sp = find_span(s, "test.phase");
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->count, 3u);
  EXPECT_GE(sp->total_ms, 0.0);
  EXPECT_GE(sp->total_ms, sp->max_ms);
}

TEST_F(TelemetryTest, SpansNest) {
  {
    Span outer("test.outer");
    {
      Span inner("test.inner");
    }
    {
      Span inner("test.inner");
    }
  }
  const Snapshot s = snapshot();
  const SpanSample* outer = find_span(s, "test.outer");
  const SpanSample* inner = find_span(s, "test.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->count, 1u);
  EXPECT_EQ(inner->count, 2u);
  // The outer span encloses both inner ones.
  EXPECT_GE(outer->total_ms, inner->total_ms - 1e-6);
}

TEST_F(TelemetryTest, SpanStopIsIdempotent) {
  Span span("test.once");
  span.stop();
  span.stop();  // second stop (and the destructor later) must not re-record
  const Snapshot s = snapshot();
  const SpanSample* sp = find_span(s, "test.once");
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->count, 1u);
}

TEST_F(TelemetryTest, DisabledModeRegistersNothing) {
  set_enabled(false);
  EXPECT_FALSE(enabled());
  count("test.invisible", 100);
  set_gauge("test.invisible_gauge", 1.0);
  {
    Span span("test.invisible_span");
  }
  EXPECT_TRUE(snapshot().empty());
  // Re-enabling does not resurrect anything recorded while disabled.
  set_enabled(true);
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(TelemetryTest, SpanStartedWhileEnabledStaysConsistent) {
  // A span constructed while disabled records nothing even if telemetry is
  // enabled before it ends (it never captured a start time).
  set_enabled(false);
  {
    Span span("test.limbo");
    set_enabled(true);
  }
  EXPECT_EQ(find_span(snapshot(), "test.limbo"), nullptr);
}

TEST_F(TelemetryTest, ResetClearsEverything) {
  count("test.c");
  set_gauge("test.g", 1.0);
  {
    Span span("test.s");
  }
  EXPECT_FALSE(snapshot().empty());
  reset();
  EXPECT_TRUE(snapshot().empty());
}

TEST_F(TelemetryTest, ThreadSafeUnderParallelFor) {
  const std::size_t saved = thread_count();
  set_threads(4);
  constexpr std::size_t kIters = 2000;
  parallel_for(0, kIters, 1, [](std::size_t, std::size_t) {
    count("test.parallel");
    Span span("test.parallel_span");
  });
  set_threads(saved);
  const Snapshot s = snapshot();
  const CounterSample* c = find_counter(s, "test.parallel");
  ASSERT_NE(c, nullptr);
  // parallel_for itself also counts; ours must be exact despite contention.
  EXPECT_EQ(c->value, kIters);
  const SpanSample* sp = find_span(s, "test.parallel_span");
  ASSERT_NE(sp, nullptr);
  EXPECT_EQ(sp->count, kIters);
}

// Minimal JSON syntax walk: objects/strings/numbers/booleans, enough to
// reject unbalanced braces, bad escapes, and trailing commas in the
// telemetry export without pulling in a JSON library.
bool json_ok(std::string_view js) {
  std::size_t i = 0;
  const auto skip_ws = [&] {
    while (i < js.size() && (js[i] == ' ' || js[i] == '\n' || js[i] == '\t' ||
                             js[i] == '\r')) {
      ++i;
    }
  };
  // Returns false on malformed input; on success leaves i one past the value.
  std::function<bool()> value = [&]() -> bool {
    skip_ws();
    if (i >= js.size()) return false;
    const char c = js[i];
    if (c == '{') {
      ++i;
      skip_ws();
      if (i < js.size() && js[i] == '}') {
        ++i;
        return true;
      }
      while (true) {
        skip_ws();
        if (i >= js.size() || js[i] != '"' || !value()) return false;
        skip_ws();
        if (i >= js.size() || js[i] != ':') return false;
        ++i;
        if (!value()) return false;
        skip_ws();
        if (i < js.size() && js[i] == ',') {
          ++i;
          continue;
        }
        break;
      }
      skip_ws();
      if (i >= js.size() || js[i] != '}') return false;
      ++i;
      return true;
    }
    if (c == '"') {
      ++i;
      while (i < js.size() && js[i] != '"') {
        if (js[i] == '\\') {
          ++i;
          if (i >= js.size()) return false;
        }
        ++i;
      }
      if (i >= js.size()) return false;
      ++i;
      return true;
    }
    if (c == 't') {
      if (js.substr(i, 4) != "true") return false;
      i += 4;
      return true;
    }
    if (c == 'f') {
      if (js.substr(i, 5) != "false") return false;
      i += 5;
      return true;
    }
    // Number.
    std::size_t start = i;
    while (i < js.size() &&
           (std::isdigit(static_cast<unsigned char>(js[i])) || js[i] == '-' ||
            js[i] == '+' || js[i] == '.' || js[i] == 'e' || js[i] == 'E')) {
      ++i;
    }
    return i > start;
  };
  if (!value()) return false;
  skip_ws();
  return i == js.size();
}

TEST_F(TelemetryTest, JsonExportShape) {
  count("test.count", 7);
  set_gauge("test.gauge", 3.5);
  {
    Span span("test.span");
  }
  const std::string js = to_json();
  EXPECT_TRUE(json_ok(js)) << js;
  EXPECT_NE(js.find("\"counters\""), std::string::npos);
  EXPECT_NE(js.find("\"gauges\""), std::string::npos);
  EXPECT_NE(js.find("\"spans\""), std::string::npos);
  EXPECT_NE(js.find("\"test.count\": 7"), std::string::npos);
  EXPECT_NE(js.find("\"test.gauge\": 3.5"), std::string::npos);
  EXPECT_NE(js.find("\"test.span\""), std::string::npos);
  EXPECT_NE(js.find("\"total_ms\""), std::string::npos);
}

TEST_F(TelemetryTest, JsonEscapesAwkwardNames) {
  count("test.\"quoted\"\\slash\n", 1);
  const std::string js = to_json();
  EXPECT_TRUE(json_ok(js)) << js;
  EXPECT_NE(js.find("\\\"quoted\\\""), std::string::npos);
  EXPECT_NE(js.find("\\n"), std::string::npos);
}

TEST_F(TelemetryTest, NonFiniteGaugesStillParseStrictly) {
  // Gauges can legitimately go non-finite (a drift score before warmup, a
  // ratio with a zero denominator).  The export used to print them as bare
  // `nan` / `inf`, which no strict JSON parser accepts — the /metrics
  // endpoint and every BENCH_*.json embedding the snapshot were invalid.
  // They must come out as null.
  set_gauge("test.bad_a", std::numeric_limits<double>::quiet_NaN());
  set_gauge("test.bad_b", std::numeric_limits<double>::infinity());
  set_gauge("test.bad_c", -std::numeric_limits<double>::infinity());
  set_gauge("test.good", 2.25);
  const std::string js = to_json();

  const json::Value doc = json::parse_or_throw(js);  // throws on bare nan/inf
  const json::Value* gauges = doc.find("gauges");
  ASSERT_NE(gauges, nullptr);
  ASSERT_NE(gauges->find("test.bad_a"), nullptr);
  EXPECT_TRUE(gauges->find("test.bad_a")->is_null());
  EXPECT_TRUE(gauges->find("test.bad_b")->is_null());
  EXPECT_TRUE(gauges->find("test.bad_c")->is_null());
  ASSERT_NE(gauges->find("test.good"), nullptr);
  EXPECT_DOUBLE_EQ(gauges->find("test.good")->number, 2.25);
}

TEST_F(TelemetryTest, GaugePrecisionRoundTrips) {
  // %.9g-class formatting silently rounded gauges; the export now uses the
  // shortest round-trip rendering.
  const double v = 0.1 + 0.2;  // 0.30000000000000004: needs 17 digits
  set_gauge("test.precise", v);
  const json::Value doc = json::parse_or_throw(to_json());
  const json::Value* g = doc.find("gauges");
  ASSERT_NE(g, nullptr);
  ASSERT_NE(g->find("test.precise"), nullptr);
  EXPECT_EQ(g->find("test.precise")->number, v);  // bitwise, not approx
}

TEST_F(TelemetryTest, JsonEscapeHelper) {
  EXPECT_EQ(json_escape("plain"), "plain");
  EXPECT_EQ(json_escape("a\"b"), "a\\\"b");
  EXPECT_EQ(json_escape("a\\b"), "a\\\\b");
  EXPECT_EQ(json_escape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(json_escape(std::string_view("\x01", 1)), "\\u0001");
}

}  // namespace
}  // namespace repro::util::telemetry
