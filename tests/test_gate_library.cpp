#include "circuit/gate_library.h"

#include <gtest/gtest.h>

#include <cmath>

namespace repro::circuit {
namespace {

TEST(GateLibrary, TypeNameRoundTrip) {
  for (GateType t : {GateType::kInput, GateType::kOutput, GateType::kBuf,
                     GateType::kNot, GateType::kAnd, GateType::kNand,
                     GateType::kOr, GateType::kNor, GateType::kXor,
                     GateType::kXnor, GateType::kDff}) {
    EXPECT_EQ(gate_type_from_name(gate_type_name(t)), t);
  }
}

TEST(GateLibrary, TypeNameCaseInsensitiveAndAliases) {
  EXPECT_EQ(gate_type_from_name("nand"), GateType::kNand);
  EXPECT_EQ(gate_type_from_name("NAND"), GateType::kNand);
  EXPECT_EQ(gate_type_from_name("inv"), GateType::kNot);
  EXPECT_EQ(gate_type_from_name("buff"), GateType::kBuf);
}

TEST(GateLibrary, UnknownTypeThrows) {
  EXPECT_THROW((void)gate_type_from_name("tristate"), std::invalid_argument);
}

TEST(GateLibrary, CombinationalClassification) {
  EXPECT_TRUE(is_combinational(GateType::kNand));
  EXPECT_TRUE(is_combinational(GateType::kNot));
  EXPECT_FALSE(is_combinational(GateType::kInput));
  EXPECT_FALSE(is_combinational(GateType::kOutput));
  EXPECT_FALSE(is_combinational(GateType::kDff));
}

TEST(GateLibrary, LaunchCaptureHaveZeroDelay) {
  GateLibrary lib;
  EXPECT_DOUBLE_EQ(lib.nominal_delay_ps(GateType::kInput, 3), 0.0);
  EXPECT_DOUBLE_EQ(lib.nominal_delay_ps(GateType::kOutput, 0), 0.0);
}

TEST(GateLibrary, DelayGrowsWithFanout) {
  GateLibrary lib;
  const double d1 = lib.nominal_delay_ps(GateType::kNand, 1);
  const double d4 = lib.nominal_delay_ps(GateType::kNand, 4);
  EXPECT_GT(d1, 0.0);
  EXPECT_GT(d4, d1);
}

TEST(GateLibrary, ZeroFanoutTreatedAsOne) {
  GateLibrary lib;
  EXPECT_DOUBLE_EQ(lib.nominal_delay_ps(GateType::kNor, 0),
                   lib.nominal_delay_ps(GateType::kNor, 1));
}

TEST(GateLibrary, SigmasScaleWithNominalDelay) {
  GateLibrary lib;
  const auto s1 = lib.delay_sigmas_ps(GateType::kNand, 30.0);
  const auto s2 = lib.delay_sigmas_ps(GateType::kNand, 60.0);
  EXPECT_NEAR(s2.leff, 2.0 * s1.leff, 1e-12);
  EXPECT_NEAR(s2.vt, 2.0 * s1.vt, 1e-12);
  EXPECT_NEAR(s2.random, 2.0 * s1.random, 1e-12);
}

TEST(GateLibrary, RandomVarianceFractionMatchesBudget) {
  GateLibrary lib;
  const auto s = lib.delay_sigmas_ps(GateType::kNor, 40.0);
  const double total =
      s.leff * s.leff + s.vt * s.vt + s.random * s.random;
  // Paper: random term carries 6% of the total delay variance.
  EXPECT_NEAR(s.random * s.random / total, 0.06, 1e-12);
}

TEST(GateLibrary, BudgetIsConfigurable) {
  GateLibrary lib;
  VariationBudget b;
  b.random_variance_fraction = 0.20;
  lib.set_budget(b);
  const auto s = lib.delay_sigmas_ps(GateType::kAnd, 50.0);
  const double total = s.leff * s.leff + s.vt * s.vt + s.random * s.random;
  EXPECT_NEAR(s.random * s.random / total, 0.20, 1e-12);
}

TEST(GateLibrary, LeffDominatesVt) {
  // With equal relative parameter sigmas, Leff elasticity ~1 vs Vt ~0.5
  // means Leff contributes the larger delay sigma for every cell.
  GateLibrary lib;
  for (GateType t : {GateType::kNot, GateType::kNand, GateType::kNor,
                     GateType::kXor}) {
    const auto s = lib.delay_sigmas_ps(t, 40.0);
    EXPECT_GT(s.leff, s.vt) << gate_type_name(t);
  }
}

}  // namespace
}  // namespace repro::circuit
