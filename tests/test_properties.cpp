// Parameterized property sweeps across shapes, tolerances and benchmarks.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/error_model.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "linalg/gemm.h"
#include "linalg/solve.h"
#include "linalg/svd.h"
#include "timing/segments.h"
#include "timing/sta.h"
#include "util/rng.h"
#include "variation/variation_model.h"

namespace repro {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// ---------- SVD property sweep over shapes ----------

class SvdShapeProperty
    : public ::testing::TestWithParam<std::tuple<int, int, int>> {};

TEST_P(SvdShapeProperty, ReconstructionOrthogonalityRank) {
  const auto [rows, cols, rank_cap] = GetParam();
  const std::size_t r = static_cast<std::size_t>(rows);
  const std::size_t c = static_cast<std::size_t>(cols);
  linalg::Matrix a;
  std::size_t expected_rank;
  if (rank_cap > 0 && static_cast<std::size_t>(rank_cap) < std::min(r, c)) {
    a = linalg::multiply(
        random_matrix(r, static_cast<std::size_t>(rank_cap), 11),
        random_matrix(static_cast<std::size_t>(rank_cap), c, 13));
    expected_rank = static_cast<std::size_t>(rank_cap);
  } else {
    a = random_matrix(r, c, 17);
    expected_rank = std::min(r, c);
  }
  const linalg::SvdResult f = linalg::svd(a);
  ASSERT_TRUE(f.converged);
  const double scale = 1.0 + (f.s.empty() ? 0.0 : f.s.front());
  EXPECT_LT(linalg::max_abs_diff(linalg::svd_reconstruct(f), a),
            1e-10 * scale);
  EXPECT_LT(linalg::max_abs_diff(linalg::multiply_at(f.u, f.u),
                                 linalg::Matrix::identity(f.u.cols())),
            1e-10);
  EXPECT_LT(linalg::max_abs_diff(linalg::multiply_at(f.v, f.v),
                                 linalg::Matrix::identity(f.v.cols())),
            1e-10);
  EXPECT_EQ(linalg::svd_rank(f, r, c), expected_rank);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, SvdShapeProperty,
    ::testing::Values(std::make_tuple(1, 1, 0), std::make_tuple(5, 5, 0),
                      std::make_tuple(20, 5, 0), std::make_tuple(5, 20, 0),
                      std::make_tuple(40, 40, 0), std::make_tuple(33, 17, 4),
                      std::make_tuple(17, 33, 4), std::make_tuple(50, 8, 2),
                      std::make_tuple(8, 50, 2), std::make_tuple(64, 63, 0)));

// ---------- Selection tolerance sweep ----------

class ToleranceProperty : public ::testing::TestWithParam<double> {};

TEST_P(ToleranceProperty, SelectionMeetsToleranceAndShrinks) {
  const double eps = GetParam();
  // Correlated rows with noise: realistic decay.
  util::Rng rng(23);
  const linalg::Matrix base = random_matrix(5, 30, 29);
  linalg::Matrix a(45, 30);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t d = 0; d < 5; ++d) {
      linalg::axpy(rng.uniform(0.2, 1.0), base.row(d), a.row(i));
    }
    for (std::size_t j = 0; j < a.cols(); ++j) a(i, j) += 0.05 * rng.normal();
  }
  core::PathSelectionOptions opt;
  opt.epsilon = eps;
  const core::PathSelectionResult r =
      core::select_representative_paths(a, 2000.0, opt);
  EXPECT_LE(r.eps_r, eps);
  EXPECT_LE(r.representatives.size(), r.exact_rank);
  // Verify with the independent (non-Gram) predictor construction.
  const core::LinearPredictor p = core::make_path_predictor(
      a, linalg::Vector(a.rows(), 0.0), r.representatives);
  const linalg::Vector sig = p.error_sigmas();
  for (double s : sig) EXPECT_LE(3.0 * s / 2000.0, eps + 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Epsilons, ToleranceProperty,
                         ::testing::Values(0.005, 0.01, 0.02, 0.05, 0.08,
                                           0.12));

// ---------- Full-model invariants across benchmarks ----------

class BenchmarkProperty : public ::testing::TestWithParam<const char*> {};

TEST_P(BenchmarkProperty, ModelFactorizationInvariants) {
  const std::string name = GetParam();
  circuit::Netlist nl = circuit::generate_benchmark(name);
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const timing::TimingGraph tg(nl, lib);
  const auto paths = timing::enumerate_worst_paths(tg, {.max_paths = 120});
  ASSERT_FALSE(paths.empty());
  const auto dec = timing::extract_segments(nl, paths);
  const variation::SpatialModel spatial(3);
  const variation::VariationModel model(tg, spatial, paths, dec, {});

  // A = G Sigma and mu_P = G mu_S, exactly.
  EXPECT_LT(linalg::max_abs_diff(
                linalg::multiply(model.g(), model.sigma()), model.a()),
            1e-9);
  const linalg::Vector gm = linalg::matvec(model.g(), model.mu_segments());
  for (std::size_t i = 0; i < gm.size(); ++i) {
    EXPECT_NEAR(gm[i], model.mu_paths()[i], 1e-9);
  }
  // rank(A) <= n_S (paper Lemma 1).
  EXPECT_LE(linalg::rank(model.a()), model.num_segments());
  // Path delay == sum of gate delays (linearity).
  for (std::size_t p = 0; p < 5 && p < paths.size(); ++p) {
    EXPECT_NEAR(model.mu_paths()[p],
                timing::path_delay_ps(tg, paths[p].gates), 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Benchmarks, BenchmarkProperty,
                         ::testing::Values("s1196", "s1423", "s1488",
                                           "s5378"));

// ---------- Gram-identity property across random selections ----------

class GramIdentityProperty : public ::testing::TestWithParam<int> {};

TEST_P(GramIdentityProperty, ErrorModelMatchesPredictor) {
  const int seed = GetParam();
  util::Rng rng(static_cast<std::uint64_t>(seed));
  const std::size_t n = 10 + rng.uniform_index(15);
  const std::size_t m = 8 + rng.uniform_index(20);
  const linalg::Matrix a =
      random_matrix(n, m, static_cast<std::uint64_t>(seed) * 101 + 7);
  const std::size_t r = 1 + rng.uniform_index(n / 2);
  std::vector<int> all(n);
  for (std::size_t i = 0; i < n; ++i) all[i] = static_cast<int>(i);
  rng.shuffle(all);
  std::vector<int> rep(all.begin(), all.begin() + static_cast<long>(r));
  const core::SelectionErrors se =
      core::selection_errors(a, rep, 1000.0, 3.0);
  const core::LinearPredictor p =
      core::make_path_predictor(a, linalg::Vector(n, 0.0), rep);
  const linalg::Vector sig = p.error_sigmas();
  ASSERT_EQ(se.sigma.size(), sig.size());
  for (std::size_t i = 0; i < sig.size(); ++i) {
    EXPECT_NEAR(se.sigma[i], sig[i], 1e-7 * (1.0 + sig[i])) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GramIdentityProperty,
                         ::testing::Range(1, 13));

// ---------- Effective-rank vs selection-size coupling ----------

class EffRankCouplingProperty : public ::testing::TestWithParam<double> {};

TEST_P(EffRankCouplingProperty, NoiseRaisesBothEffRankAndSelection) {
  const double noise = GetParam();
  util::Rng rng(31);
  const linalg::Matrix base = random_matrix(4, 25, 37);
  linalg::Matrix a(40, 25);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t d = 0; d < 4; ++d) {
      linalg::axpy(rng.uniform(0.3, 1.0), base.row(d), a.row(i));
    }
    for (std::size_t j = 0; j < a.cols(); ++j) {
      a(i, j) += noise * rng.normal();
    }
  }
  core::PathSelectionOptions opt;
  opt.epsilon = 0.05;
  const core::PathSelectionResult r =
      core::select_representative_paths(a, 2000.0, opt);
  EXPECT_LE(r.eps_r, 0.05);
  // Stash results across instantiations via static state is fragile; instead
  // just assert the weak bound: selection size grows at most to rank.
  EXPECT_LE(r.representatives.size(), r.exact_rank);
}

INSTANTIATE_TEST_SUITE_P(Noise, EffRankCouplingProperty,
                         ::testing::Values(0.01, 0.05, 0.1, 0.3));

}  // namespace
}  // namespace repro
