#include "variation/spatial_model.h"

#include <gtest/gtest.h>

#include <cmath>

namespace repro::variation {
namespace {

TEST(SpatialModel, RegionCountsMatchPaper) {
  EXPECT_EQ(SpatialModel(3).num_regions(), 21u);   // 1 + 4 + 16
  EXPECT_EQ(SpatialModel(5).num_regions(), 341u);  // 1 + 4 + 16 + 64 + 256
  EXPECT_EQ(SpatialModel(1).num_regions(), 1u);
}

TEST(SpatialModel, RegionsAtLevel) {
  SpatialModel m(4);
  EXPECT_EQ(m.regions_at_level(0), 1u);
  EXPECT_EQ(m.regions_at_level(3), 64u);
}

TEST(SpatialModel, InvalidConstructionThrows) {
  EXPECT_THROW(SpatialModel(0), std::invalid_argument);
  EXPECT_THROW(SpatialModel(2, {1.0}), std::invalid_argument);
  EXPECT_THROW(SpatialModel(2, {0.0, 0.0}), std::invalid_argument);
}

TEST(SpatialModel, WeightsNormalized) {
  SpatialModel m(3, {3.0, 4.0, 12.0});
  double ss = 0.0;
  for (int l = 0; l < 3; ++l) ss += m.level_weight(l) * m.level_weight(l);
  EXPECT_NEAR(ss, 1.0, 1e-12);
  // Relative magnitudes preserved.
  EXPECT_NEAR(m.level_weight(1) / m.level_weight(0), 4.0 / 3.0, 1e-12);
}

TEST(SpatialModel, RegionIndexIdentifiesQuadrants) {
  SpatialModel m(2);
  // Level 0 covers everything with region 0.
  EXPECT_EQ(m.region_index(0, 0.1, 0.9), 0u);
  EXPECT_EQ(m.region_index(0, 0.9, 0.1), 0u);
  // Level 1 regions are the 4 quadrants (ids 1..4).
  const auto q00 = m.region_index(1, 0.25, 0.25);
  const auto q10 = m.region_index(1, 0.75, 0.25);
  const auto q01 = m.region_index(1, 0.25, 0.75);
  const auto q11 = m.region_index(1, 0.75, 0.75);
  EXPECT_NE(q00, q10);
  EXPECT_NE(q00, q01);
  EXPECT_NE(q01, q11);
  EXPECT_GE(q00, 1u);
  EXPECT_LE(q11, 4u);
}

TEST(SpatialModel, PointsOutsideDieThrow) {
  SpatialModel m(2);
  EXPECT_THROW((void)m.region_index(0, 1.0, 0.5), std::out_of_range);
  EXPECT_THROW((void)m.region_index(0, -0.1, 0.5), std::out_of_range);
  EXPECT_THROW((void)m.region_index(2, 0.5, 0.5), std::out_of_range);
}

TEST(SpatialModel, CoveringRegionsOnePerLevel) {
  SpatialModel m(4);
  const auto regions = m.covering_regions(0.3, 0.6);
  ASSERT_EQ(regions.size(), 4u);
  // Region ids strictly increase because each level block starts after the
  // previous one.
  for (std::size_t l = 1; l < regions.size(); ++l) {
    EXPECT_GT(regions[l], regions[l - 1]);
  }
}

TEST(SpatialModel, CorrelationStructure) {
  SpatialModel m(3);
  // Same point: full correlation.
  EXPECT_NEAR(m.correlation(0.2, 0.2, 0.2, 0.2), 1.0, 1e-12);
  // Same level-2 cell: still 1 (all three levels shared).
  EXPECT_NEAR(m.correlation(0.01, 0.01, 0.02, 0.02), 1.0, 1e-12);
  // Opposite corners: only the die-level component is shared.
  const double far = m.correlation(0.01, 0.01, 0.99, 0.99);
  EXPECT_NEAR(far, 1.0 / 3.0, 1e-12);
  // Nearby-but-different quadrants share only level 0 too.
  const double cross = m.correlation(0.49, 0.49, 0.51, 0.51);
  EXPECT_NEAR(cross, 1.0 / 3.0, 1e-12);
}

TEST(SpatialModel, CorrelationMonotoneWithProximityOnAverage) {
  SpatialModel m(4);
  const double near = m.correlation(0.30, 0.30, 0.31, 0.31);
  const double far = m.correlation(0.30, 0.30, 0.95, 0.95);
  EXPECT_GT(near, far);
}

TEST(SpatialModel, CustomWeightsAffectCorrelation) {
  // Heavy die-to-die weight makes distant points highly correlated.
  SpatialModel m(2, {10.0, 1.0});
  const double far = m.correlation(0.1, 0.1, 0.9, 0.9);
  EXPECT_GT(far, 0.9);
}

}  // namespace
}  // namespace repro::variation
