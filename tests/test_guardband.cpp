#include "core/guardband.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <memory>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/error_model.h"
#include "core/path_selection.h"
#include "timing/segments.h"
#include "variation/variation_model.h"

namespace repro::core {
namespace {

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<variation::SpatialModel> spatial;
  std::unique_ptr<variation::VariationModel> model;
  double t_cons = 0.0;

  Fixture() : nl(circuit::generate_benchmark("s1196")) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = 80});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<variation::SpatialModel>(3);
    model = std::make_unique<variation::VariationModel>(*tg, *spatial, paths,
                                                        dec, variation::VariationOptions{});
    // Set Tcons slightly above the worst nominal so that both failing and
    // passing samples occur.
    double worst = 0.0;
    for (double mu : model->mu_paths()) worst = std::max(worst, mu);
    t_cons = 1.02 * worst;
  }
};

TEST(Guardband, NoMissedFailuresWithWorstCaseBands) {
  Fixture f;
  PathSelectionOptions psel;
  psel.epsilon = 0.05;
  const PathSelectionResult sel =
      select_representative_paths(f.model->a(), f.t_cons, psel);
  const LinearPredictor p = make_path_predictor(
      f.model->a(), f.model->mu_paths(), sel.representatives);
  McOptions opt;
  opt.samples = 2000;
  const GuardbandReport rep = guardband_analysis(
      *f.model, p, sel.errors.per_path_eps, f.t_cons, psel.epsilon, opt);
  // The per-path guard-band is a kappa=3 worst case; missed failures should
  // be essentially absent.
  EXPECT_LE(rep.missed, rep.observations / 10000 + 1);
  EXPECT_GT(rep.observations, 0u);
}

TEST(Guardband, FlaggedSupersetOfTrueFailsApproximately) {
  Fixture f;
  PathSelectionOptions psel;
  psel.epsilon = 0.05;
  const PathSelectionResult sel =
      select_representative_paths(f.model->a(), f.t_cons, psel);
  const LinearPredictor p = make_path_predictor(
      f.model->a(), f.model->mu_paths(), sel.representatives);
  McOptions opt;
  opt.samples = 1500;
  const GuardbandReport rep = guardband_analysis(
      *f.model, p, sel.errors.per_path_eps, f.t_cons, psel.epsilon, opt);
  EXPECT_GE(rep.flagged + rep.missed, rep.true_fails);
  // Sanity: confusion counts are consistent.
  EXPECT_EQ(rep.flagged - rep.false_alarms + rep.missed, rep.true_fails);
}

TEST(Guardband, AverageBelowEpsilon) {
  Fixture f;
  PathSelectionOptions psel;
  psel.epsilon = 0.05;
  const PathSelectionResult sel =
      select_representative_paths(f.model->a(), f.t_cons, psel);
  const LinearPredictor p = make_path_predictor(
      f.model->a(), f.model->mu_paths(), sel.representatives);
  McOptions opt;
  opt.samples = 500;
  const GuardbandReport rep = guardband_analysis(
      *f.model, p, sel.errors.per_path_eps, f.t_cons, psel.epsilon, opt);
  // Section 6.3: the average guard-band is below the configured tolerance.
  EXPECT_LE(rep.avg_guardband, psel.epsilon + 1e-12);
  EXPECT_LE(rep.max_guardband, psel.epsilon + 1e-12);
  // MC e1 (observed) is below the analytic worst case on average.
  EXPECT_LE(rep.mc.e1, rep.max_guardband + 0.01);
}

TEST(Guardband, ZeroGuardbandFlagsOnlyPredictedFails) {
  Fixture f;
  const SubsetSelector selector(f.model->a());
  const auto rep_paths = selector.select(selector.rank());
  const LinearPredictor p =
      make_path_predictor(f.model->a(), f.model->mu_paths(), rep_paths);
  // Exact predictor + zero guard band: flagged == true fails.
  linalg::Vector zeros(p.remaining.size(), 0.0);
  McOptions opt;
  opt.samples = 800;
  const GuardbandReport rep =
      guardband_analysis(*f.model, p, zeros, f.t_cons, 0.0, opt);
  EXPECT_EQ(rep.missed, 0u);
  EXPECT_EQ(rep.false_alarms, 0u);
  EXPECT_EQ(rep.flagged, rep.true_fails);
}

TEST(AdaptiveGuardband, CombinesBaseAndShiftAndShrinksWithInformation) {
  const std::vector<double> base = {3.0, 4.0};
  const std::vector<double> mu = {100.0, 200.0};
  const double kappa = 3.0;

  // No shift variance: reduces to the batch analytic guard-band.
  const AdaptiveGuardband batch =
      adaptive_guardband(base, std::vector<double>{0.0, 0.0}, mu, kappa);
  EXPECT_NEAR(batch.eps, 0.5 * (kappa * 3.0 / 100.0 + kappa * 4.0 / 200.0),
              1e-12);
  EXPECT_NEAR(batch.max_eps, kappa * 3.0 / 100.0, 1e-12);
  EXPECT_DOUBLE_EQ(batch.shift_share, 0.0);

  // 3-4-5: sigma_0 = sqrt(3^2 + 4^2) = 5.
  const AdaptiveGuardband wide =
      adaptive_guardband(base, std::vector<double>{16.0, 9.0}, mu, kappa);
  EXPECT_NEAR(wide.max_eps, kappa * 5.0 / 100.0, 1e-12);
  EXPECT_GT(wide.eps, batch.eps);
  EXPECT_GT(wide.shift_share, 0.0);

  // Shrinking q (an accepted die) can only tighten the band.
  const AdaptiveGuardband tighter =
      adaptive_guardband(base, std::vector<double>{4.0, 1.0}, mu, kappa);
  EXPECT_LT(tighter.eps, wide.eps);
  EXPECT_GE(tighter.eps, batch.eps);

  // Empty inputs yield a zero guard-band, not a divide-by-zero.
  const AdaptiveGuardband empty = adaptive_guardband({}, {}, {}, kappa);
  EXPECT_DOUBLE_EQ(empty.eps, 0.0);
  EXPECT_DOUBLE_EQ(empty.max_eps, 0.0);
}

TEST(Guardband, SizeMismatchThrows) {
  Fixture f;
  const SubsetSelector selector(f.model->a());
  const LinearPredictor p = make_path_predictor(
      f.model->a(), f.model->mu_paths(), selector.select(3));
  EXPECT_THROW((void)guardband_analysis(*f.model, p, linalg::Vector(2, 0.0),
                                        f.t_cons, 0.05, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
