#include "linalg/lu.h"

#include <gtest/gtest.h>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = rng.normal();
  }
  return m;
}

TEST(Lu, SolveKnownSystem) {
  Matrix a{{2.0, 1.0}, {1.0, 3.0}};
  Vector b{3.0, 5.0};
  const Vector x = lu_solve(lu_factor(a), b);
  EXPECT_NEAR(x[0], 0.8, 1e-12);
  EXPECT_NEAR(x[1], 1.4, 1e-12);
}

TEST(Lu, NonSquareThrows) {
  EXPECT_THROW((void)lu_factor(Matrix(2, 3)), std::invalid_argument);
}

TEST(Lu, SingularDetected) {
  Matrix a{{1.0, 2.0}, {2.0, 4.0}};
  const LuFactors f = lu_factor(a);
  EXPECT_TRUE(f.singular);
  EXPECT_THROW((void)lu_solve(f, Vector{1.0, 1.0}), std::runtime_error);
}

TEST(Lu, ResidualSmallOnRandomSystems) {
  for (std::uint64_t seed = 1; seed <= 5; ++seed) {
    const std::size_t n = 20 + 7 * seed;
    const Matrix a = random_matrix(n, seed);
    util::Rng rng(seed + 100);
    Vector b(n);
    for (double& v : b) v = rng.normal();
    const Vector x = lu_solve(lu_factor(a), b);
    const Vector ax = matvec(a, x);
    double resid = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      resid = std::max(resid, std::abs(ax[i] - b[i]));
    }
    EXPECT_LT(resid, 1e-9) << "seed " << seed;
  }
}

TEST(Lu, PivotingHandlesZeroLeadingEntry) {
  Matrix a{{0.0, 1.0}, {1.0, 0.0}};
  const Vector x = lu_solve(lu_factor(a), Vector{2.0, 3.0});
  EXPECT_NEAR(x[0], 3.0, 1e-14);
  EXPECT_NEAR(x[1], 2.0, 1e-14);
}

TEST(Lu, MultiRhsSolve) {
  const Matrix a = random_matrix(8, 42);
  const Matrix b = random_matrix(8, 43);
  const Matrix x = lu_solve(lu_factor(a), b);
  EXPECT_LT(max_abs_diff(multiply(a, x), b), 1e-10);
}

TEST(Lu, InverseTimesMatrixIsIdentity) {
  const Matrix a = random_matrix(12, 5);
  const Matrix inv = inverse(a);
  EXPECT_LT(max_abs_diff(multiply(a, inv), Matrix::identity(12)), 1e-9);
}

TEST(Lu, DeterminantKnownValues) {
  Matrix a{{2.0, 0.0}, {0.0, 3.0}};
  EXPECT_NEAR(determinant(a), 6.0, 1e-12);
  Matrix swap{{0.0, 1.0}, {1.0, 0.0}};
  EXPECT_NEAR(determinant(swap), -1.0, 1e-12);
  Matrix sing{{1.0, 1.0}, {1.0, 1.0}};
  EXPECT_DOUBLE_EQ(determinant(sing), 0.0);
}

TEST(Lu, DeterminantMatchesProductRule) {
  const Matrix a = random_matrix(6, 9);
  const Matrix b = random_matrix(6, 10);
  EXPECT_NEAR(determinant(multiply(a, b)), determinant(a) * determinant(b),
              1e-8 * std::abs(determinant(a) * determinant(b)) + 1e-10);
}

}  // namespace
}  // namespace repro::linalg
