#include "variation/variation_model.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "linalg/gemm.h"
#include "test_helpers.h"
#include "timing/sta.h"
#include "util/rng.h"

namespace repro::variation {
namespace {

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<SpatialModel> spatial;
  std::unique_ptr<VariationModel> model;

  explicit Fixture(const std::string& bench, std::size_t max_paths = 200,
                   VariationOptions opt = {}, int levels = 3)
      : nl(circuit::generate_benchmark(bench)) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = max_paths});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<SpatialModel>(levels);
    model = std::make_unique<VariationModel>(*tg, *spatial, paths, dec, opt);
  }
};

TEST(VariationModel, ParameterCountMatchesPaperFormula) {
  Fixture f("s1196");
  // m = 2 * |R_C| + |G_C|.
  EXPECT_EQ(f.model->num_params(),
            2 * f.model->covered_regions() + f.model->covered_gates());
  EXPECT_EQ(f.model->covered_gates(),
            timing::covered_gate_count(f.nl, f.paths));
  EXPECT_LE(f.model->covered_regions(), f.spatial->num_regions());
}

TEST(VariationModel, AEqualsGTimesSigma) {
  Fixture f("s1196");
  const linalg::Matrix gs = linalg::multiply(f.model->g(), f.model->sigma());
  EXPECT_LT(linalg::max_abs_diff(gs, f.model->a()), 1e-9);
}

TEST(VariationModel, MuPathsEqualsGTimesMuSegments) {
  Fixture f("s1196");
  const linalg::Vector gm =
      linalg::matvec(f.model->g(), f.model->mu_segments());
  for (std::size_t i = 0; i < gm.size(); ++i) {
    EXPECT_NEAR(gm[i], f.model->mu_paths()[i], 1e-9);
  }
}

TEST(VariationModel, NominalsMatchStaPathDelays) {
  Fixture f("s1196");
  for (std::size_t p = 0; p < f.paths.size(); ++p) {
    EXPECT_NEAR(f.model->mu_paths()[p],
                timing::path_delay_ps(*f.tg, f.paths[p].gates), 1e-9);
  }
}

TEST(VariationModel, ZeroSampleGivesNominal) {
  Fixture f("s1196", 50);
  const linalg::Vector x(f.model->num_params(), 0.0);
  const linalg::Vector d = f.model->path_delays(x);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(d[i], f.model->mu_paths()[i]);
  }
}

TEST(VariationModel, SampleSizeMismatchThrows) {
  Fixture f("s1196", 20);
  EXPECT_THROW((void)f.model->path_delays(linalg::Vector(3, 0.0)),
               std::invalid_argument);
  EXPECT_THROW((void)f.model->segment_delays(linalg::Vector(3, 0.0)),
               std::invalid_argument);
}

TEST(VariationModel, PathSigmaMatchesMonteCarlo) {
  Fixture f("s1196", 30);
  util::Rng rng(7);
  const std::size_t n_samples = 4000;
  const std::size_t path = 0;
  double sum = 0.0, sum2 = 0.0;
  linalg::Vector x(f.model->num_params());
  for (std::size_t s = 0; s < n_samples; ++s) {
    for (double& v : x) v = rng.normal();
    const double d = f.model->path_delays(x)[path];
    sum += d;
    sum2 += d * d;
  }
  const double mc_mean = sum / n_samples;
  const double mc_sigma =
      std::sqrt(std::max(sum2 / n_samples - mc_mean * mc_mean, 0.0));
  EXPECT_NEAR(mc_mean, f.model->path_mu(path), 4.0 * f.model->path_sigma(path) /
                                                   std::sqrt(double(n_samples)));
  EXPECT_NEAR(mc_sigma, f.model->path_sigma(path),
              0.05 * f.model->path_sigma(path));
}

TEST(VariationModel, RandomScaleTriplesRandomColumns) {
  Fixture base("s1196", 50);
  VariationOptions opt;
  opt.random_scale = 3.0;
  Fixture scaled("s1196", 50, opt);
  ASSERT_EQ(base.model->num_params(), scaled.model->num_params());
  // Random-term columns live at indices >= 2 * covered_regions.
  const std::size_t rand_base = 2 * base.model->covered_regions();
  const auto& a0 = base.model->a();
  const auto& a3 = scaled.model->a();
  for (std::size_t i = 0; i < a0.rows(); ++i) {
    for (std::size_t j = 0; j < a0.cols(); ++j) {
      if (j >= rand_base) {
        EXPECT_NEAR(a3(i, j), 3.0 * a0(i, j), 1e-12);
      } else {
        EXPECT_NEAR(a3(i, j), a0(i, j), 1e-12);
      }
    }
  }
}

TEST(VariationModel, CorrelatedSigmaExceedsIndependentForSharedRegions) {
  // Path variance under the correlated model is >= the sum of the purely
  // random parts; with spatial terms present the two differ.
  Fixture f("s1423", 60);
  const std::size_t rand_base = 2 * f.model->covered_regions();
  for (std::size_t p = 0; p < 5 && p < f.paths.size(); ++p) {
    double rand_only = 0.0;
    for (std::size_t j = rand_base; j < f.model->num_params(); ++j) {
      rand_only += f.model->a()(p, j) * f.model->a()(p, j);
    }
    EXPECT_GT(f.model->path_sigma(p) * f.model->path_sigma(p),
              rand_only * 1.5);
  }
}

TEST(VariationModel, SegmentDelaysConsistentWithPathDelays) {
  Fixture f("s1196", 40);
  util::Rng rng(11);
  linalg::Vector x(f.model->num_params());
  for (double& v : x) v = rng.normal();
  const linalg::Vector d_paths = f.model->path_delays(x);
  const linalg::Vector d_segs = f.model->segment_delays(x);
  for (std::size_t p = 0; p < f.paths.size(); ++p) {
    double via = 0.0;
    for (int s : f.dec.path_segments[p]) {
      via += d_segs[static_cast<std::size_t>(s)];
    }
    EXPECT_NEAR(via, d_paths[p], 1e-9);
  }
}

TEST(VariationModel, FiveLevelModelHasMoreCoveredRegions) {
  Fixture small("s1423", 100, {}, 3);
  Fixture big("s1423", 100, {}, 5);
  EXPECT_GT(big.model->covered_regions(), small.model->covered_regions());
}

}  // namespace
}  // namespace repro::variation
