#include "core/clustering.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Rows drawn around `k` well-separated directions.
linalg::Matrix blobby_rows(std::size_t n, std::size_t m, std::size_t k,
                           double noise, std::uint64_t seed,
                           std::vector<int>* truth = nullptr) {
  util::Rng rng(seed);
  const linalg::Matrix dirs = random_matrix(k, m, seed + 1);
  linalg::Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % k;
    if (truth) truth->push_back(static_cast<int>(c));
    const double scale = rng.uniform(0.5, 2.0);
    for (std::size_t j = 0; j < m; ++j) {
      a(i, j) = scale * dirs(c, j) + noise * rng.normal();
    }
  }
  return a;
}

TEST(Clustering, AssignsEveryRow) {
  const linalg::Matrix a = blobby_rows(60, 12, 4, 0.05, 1);
  const auto assign = cluster_rows_spherical(a, 4, 16, 7);
  ASSERT_EQ(assign.size(), 60u);
  for (int c : assign) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, 4);
  }
}

TEST(Clustering, RecoversSeparatedDirections) {
  std::vector<int> truth;
  const linalg::Matrix a = blobby_rows(90, 20, 3, 0.02, 2, &truth);
  const auto assign = cluster_rows_spherical(a, 3, 20, 9);
  // Same-truth rows must land in the same cluster (up to label permutation):
  // check pairwise consistency on a sample.
  std::size_t agree = 0, total = 0;
  for (std::size_t i = 0; i < a.rows(); i += 3) {
    for (std::size_t j = i + 1; j < a.rows(); j += 7) {
      ++total;
      const bool same_truth = truth[i] == truth[j];
      const bool same_cluster = assign[i] == assign[j];
      if (same_truth == same_cluster) ++agree;
    }
  }
  EXPECT_GT(static_cast<double>(agree) / static_cast<double>(total), 0.95);
}

TEST(Clustering, BadKThrows) {
  const linalg::Matrix a = random_matrix(5, 4, 3);
  EXPECT_THROW((void)cluster_rows_spherical(a, 0, 5, 1),
               std::invalid_argument);
  EXPECT_THROW((void)cluster_rows_spherical(a, 6, 5, 1),
               std::invalid_argument);
}

TEST(Clustering, DeterministicForSeed) {
  const linalg::Matrix a = blobby_rows(40, 10, 4, 0.1, 4);
  EXPECT_EQ(cluster_rows_spherical(a, 4, 10, 42),
            cluster_rows_spherical(a, 4, 10, 42));
}

TEST(ClusteredSelection, MeetsGlobalTolerance) {
  const linalg::Matrix a = blobby_rows(120, 30, 5, 0.05, 5);
  ClusteredSelectionOptions opt;
  opt.num_clusters = 5;
  opt.selection.epsilon = 0.05;
  const ClusteredSelectionResult r =
      select_paths_clustered(a, 2000.0, opt);
  EXPECT_LE(r.eps_r, 0.05);
  EXPECT_EQ(r.clusters_used, 5u);
  // Representatives are valid, unique indices.
  std::set<int> uniq(r.representatives.begin(), r.representatives.end());
  EXPECT_EQ(uniq.size(), r.representatives.size());
  for (int i : r.representatives) {
    EXPECT_GE(i, 0);
    EXPECT_LT(i, 120);
  }
}

TEST(ClusteredSelection, ComparableSizeToDirectSelection) {
  const linalg::Matrix a = blobby_rows(150, 40, 6, 0.05, 6);
  PathSelectionOptions direct_opt;
  direct_opt.epsilon = 0.05;
  const PathSelectionResult direct =
      select_representative_paths(a, 2000.0, direct_opt);
  ClusteredSelectionOptions copt;
  copt.num_clusters = 6;
  copt.selection.epsilon = 0.05;
  const ClusteredSelectionResult clustered =
      select_paths_clustered(a, 2000.0, copt);
  // Clustering trades selection size for speed; it must stay within a small
  // factor of the direct answer.
  EXPECT_LE(clustered.representatives.size(),
            3 * direct.representatives.size() + 6);
}

TEST(ClusteredSelection, SingleClusterMatchesDirect) {
  const linalg::Matrix a = blobby_rows(50, 15, 3, 0.05, 7);
  ClusteredSelectionOptions copt;
  copt.num_clusters = 1;
  copt.selection.epsilon = 0.05;
  const ClusteredSelectionResult clustered =
      select_paths_clustered(a, 2000.0, copt);
  PathSelectionOptions direct_opt;
  direct_opt.epsilon = 0.05;
  const PathSelectionResult direct =
      select_representative_paths(a, 2000.0, direct_opt);
  std::vector<int> sorted_direct = direct.representatives;
  std::sort(sorted_direct.begin(), sorted_direct.end());
  EXPECT_EQ(clustered.representatives, sorted_direct);
  EXPECT_EQ(clustered.greedy_additions, 0u);
}

TEST(ClusteredSelection, AutoClusterCount) {
  const linalg::Matrix a = blobby_rows(60, 10, 3, 0.1, 8);
  ClusteredSelectionOptions copt;  // num_clusters = 0 -> auto
  copt.selection.epsilon = 0.08;
  const ClusteredSelectionResult r = select_paths_clustered(a, 2000.0, copt);
  EXPECT_GE(r.clusters_used, 1u);
  EXPECT_LE(r.eps_r, 0.08);
}

TEST(ClusteredSelection, EmptyMatrixThrows) {
  EXPECT_THROW((void)select_paths_clustered(linalg::Matrix(), 100.0, {}),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
