#include "core/sharded_selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "core/error_model.h"
#include "core/panel_source.h"
#include "core/path_selection.h"
#include "util/contracts.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Path-like pool: rows share a few dominant directions plus idiosyncratic
// noise (steep singular-value decay like the paper's Figure 2(a)).
linalg::Matrix correlated_rows(std::size_t n, std::size_t m, std::size_t k,
                               double noise, std::uint64_t seed) {
  util::Rng rng(seed);
  const linalg::Matrix base = random_matrix(k, m, seed + 1);
  linalg::Matrix a(n, m);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t d = 0; d < k; ++d) {
      const double w = rng.uniform(0.2, 1.0);
      linalg::axpy(w, base.row(d), a.row(i));
    }
    for (std::size_t j = 0; j < m; ++j) a(i, j) += noise * rng.normal();
  }
  return a;
}

std::vector<double> synthetic_gate_counts(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  std::vector<double> w(n);
  for (std::size_t i = 0; i < n; ++i) {
    w[i] = static_cast<double>(8 + rng.uniform_index(40));
  }
  return w;
}

TEST(PanelSource, MatrixSourceFillsRequestedRows) {
  const linalg::Matrix a = random_matrix(10, 4, 7);
  const MatrixPanelSource source(a);
  EXPECT_EQ(source.paths(), 10u);
  EXPECT_EQ(source.params(), 4u);

  const std::vector<int> ids = {7, 0, 3};
  linalg::Matrix panel(ids.size(), 4);
  source.fill_rows(ids, panel);
  for (std::size_t k = 0; k < ids.size(); ++k) {
    for (std::size_t j = 0; j < 4; ++j) {
      EXPECT_EQ(panel(k, j), a(static_cast<std::size_t>(ids[k]), j));
    }
  }
  EXPECT_EQ(source.path_weight(3), 1.0);

  const std::vector<int> bad = {10};
  linalg::Matrix one(1, 4);
  EXPECT_THROW(source.fill_rows(bad, one), std::out_of_range);
}

TEST(PanelSource, MatrixSourceWeightsBackGatePolicy) {
  const linalg::Matrix a = random_matrix(5, 3, 9);
  const std::vector<double> weights = {1, 2, 3, 4, 5};
  const MatrixPanelSource source(a, weights);
  EXPECT_EQ(source.path_weight(0), 1.0);
  EXPECT_EQ(source.path_weight(4), 5.0);
  EXPECT_THROW(source.path_weight(5), std::out_of_range);
  EXPECT_THROW(MatrixPanelSource(a, std::vector<double>(3, 1.0)),
               std::invalid_argument);
}

TEST(PanelSource, FunctionSourceGeneratesRowsOnDemand) {
  const linalg::Matrix a = random_matrix(12, 5, 11);
  const FunctionPanelSource source(
      12, 5,
      [&](int id, std::span<double> row) {
        const auto src = a.row(static_cast<std::size_t>(id));
        std::copy(src.begin(), src.end(), row.begin());
      },
      [](int id) { return 1.0 + id; });

  const std::vector<int> ids = {11, 2};
  linalg::Matrix panel(2, 5);
  source.fill_rows(ids, panel);
  EXPECT_EQ(panel(0, 0), a(11, 0));
  EXPECT_EQ(panel(1, 4), a(2, 4));
  EXPECT_EQ(source.path_weight(3), 4.0);

  linalg::Matrix wrong(2, 4);
  if (util::contracts_enabled()) {
    EXPECT_THROW(source.fill_rows(ids, wrong), util::ContractViolation);
  }
}

TEST(PanelSource, BudgetTracksPeakAcrossLeases) {
  PanelBudget budget;
  {
    PanelLease a(&budget, 100);
    EXPECT_EQ(budget.current(), 100u);
    {
      PanelLease b(&budget, 50);
      EXPECT_EQ(budget.current(), 150u);
    }
    EXPECT_EQ(budget.current(), 100u);
    PanelLease moved = std::move(a);
    EXPECT_EQ(budget.current(), 100u);
  }
  EXPECT_EQ(budget.current(), 0u);
  EXPECT_EQ(budget.peak(), 150u);
}

TEST(ShardPlan, PartitionsPoolExactlyOnce) {
  const linalg::Matrix a = correlated_rows(600, 24, 6, 0.1, 31);
  const MatrixPanelSource source(a);
  std::vector<int> pool(a.rows());
  std::iota(pool.begin(), pool.end(), 0);

  ShardedSelectionOptions opt;
  opt.num_shards = 5;
  const ShardPlan plan = plan_shards(source, pool, opt);
  EXPECT_EQ(plan.members.size(), 5u);
  EXPECT_GE(plan.clusters_used, 1u);

  std::vector<int> covered;
  for (const auto& shard : plan.members) {
    EXPECT_FALSE(shard.empty());
    EXPECT_TRUE(std::is_sorted(shard.begin(), shard.end()));
    covered.insert(covered.end(), shard.begin(), shard.end());
  }
  std::sort(covered.begin(), covered.end());
  EXPECT_EQ(covered, pool);
}

TEST(ShardPlan, DeterministicFromSeedAndIndependentOfThreads) {
  const linalg::Matrix a = correlated_rows(500, 20, 5, 0.1, 37);
  const MatrixPanelSource source(a);
  std::vector<int> pool(a.rows());
  std::iota(pool.begin(), pool.end(), 0);

  ShardedSelectionOptions opt;
  opt.num_shards = 4;
  const std::size_t saved = util::thread_count();
  util::set_threads(1);
  const ShardPlan p1 = plan_shards(source, pool, opt);
  util::set_threads(4);
  const ShardPlan p2 = plan_shards(source, pool, opt);
  util::set_threads(saved);
  EXPECT_EQ(p1.members, p2.members);
  EXPECT_EQ(p1.weight, p2.weight);

  ShardedSelectionOptions other = opt;
  other.seed = opt.seed + 1;
  const ShardPlan p3 = plan_shards(source, pool, other);
  EXPECT_NE(p1.members, p3.members);  // different seed, different k-means
}

TEST(ShardPlan, GateBalancedPolicyBalancesWeightNotCount) {
  const std::size_t n = 800;
  const linalg::Matrix a = correlated_rows(n, 24, 6, 0.1, 41);
  const std::vector<double> gates = synthetic_gate_counts(n, 42);
  const MatrixPanelSource source(a, gates);
  std::vector<int> pool(n);
  std::iota(pool.begin(), pool.end(), 0);

  ShardedSelectionOptions opt;
  opt.num_shards = 6;
  opt.policy = ShardPolicy::kGateBalanced;
  const ShardPlan plan = plan_shards(source, pool, opt);
  ASSERT_EQ(plan.members.size(), 6u);

  // Greedy heaviest-first packing bounds the spread by the largest chunk
  // weight; with ~133-path chunks and weights in [8, 47] the shard weights
  // must stay comfortably balanced.
  const auto [lo, hi] =
      std::minmax_element(plan.weight.begin(), plan.weight.end());
  EXPECT_GT(*lo, 0.0);
  EXPECT_LT(*hi / *lo, 2.0);
  for (std::size_t s = 0; s < plan.members.size(); ++s) {
    double sum = 0.0;
    for (int id : plan.members[s]) sum += gates[static_cast<std::size_t>(id)];
    EXPECT_DOUBLE_EQ(sum, plan.weight[s]);
  }
}

TEST(ShardedSelection, MeetsGlobalToleranceOnCorrelatedPool) {
  const linalg::Matrix a = correlated_rows(900, 32, 8, 0.05, 51);
  const MatrixPanelSource source(a);

  ShardedSelectionOptions opt;
  opt.num_shards = 4;
  opt.selection.epsilon = 0.05;
  opt.selection.strategy = SelectionStrategy::kGreedySweep;
  const double t_cons = 2000.0;
  const ShardedSelectionResult r = select_paths_sharded(source, t_cons, opt);

  EXPECT_TRUE(r.tolerance_met);
  EXPECT_LE(r.eps_r, opt.selection.epsilon);
  EXPECT_EQ(r.shards, 4u);
  EXPECT_EQ(r.shard_stats.size(), 4u);
  EXPECT_GE(r.union_paths, r.representatives.size());
  EXPECT_GT(r.peak_panel_bytes, 0u);
  EXPECT_TRUE(std::is_sorted(r.representatives.begin(),
                             r.representatives.end()));
  EXPECT_EQ(std::adjacent_find(r.representatives.begin(),
                               r.representatives.end()),
            r.representatives.end());

  // The streamed verifier must agree with the reference error model.
  const SelectionErrors check =
      selection_errors(a, r.representatives, t_cons, opt.selection.kappa);
  EXPECT_NEAR(r.eps_r, check.eps_r, 1e-8 + 1e-6 * check.eps_r);
}

TEST(ShardedSelection, BitIdenticalAcrossThreadCounts) {
  const linalg::Matrix a = correlated_rows(700, 28, 6, 0.08, 61);
  const MatrixPanelSource source(a);

  ShardedSelectionOptions opt;
  opt.num_shards = 5;
  opt.selection.epsilon = 0.04;
  const std::size_t saved = util::thread_count();
  util::set_threads(1);
  const ShardedSelectionResult r1 = select_paths_sharded(source, 2000.0, opt);
  util::set_threads(4);
  const ShardedSelectionResult r4 = select_paths_sharded(source, 2000.0, opt);
  util::set_threads(saved);

  EXPECT_EQ(r1.representatives, r4.representatives);
  EXPECT_EQ(r1.eps_r, r4.eps_r);  // bitwise, not approximate
  EXPECT_EQ(r1.union_paths, r4.union_paths);
  EXPECT_EQ(r1.repair_promotions, r4.repair_promotions);
  EXPECT_EQ(r1.shards, r4.shards);
}

TEST(ShardedSelection, RecursiveMergeBoundsPanelMemory) {
  // Pool big enough to force at least one recursive merge level with a
  // small cap; peak resident panel bytes must stay far below the dense
  // matrix the monolithic route would build (n^2 Gram).
  const std::size_t n = 3000;
  const linalg::Matrix a = correlated_rows(n, 24, 6, 0.05, 71);
  const MatrixPanelSource source(a);

  ShardedSelectionOptions opt;
  opt.target_shard_paths = 500;
  opt.merge_pool_cap = 600;
  opt.block_rows = 512;
  opt.selection.epsilon = 0.05;
  const ShardedSelectionResult r = select_paths_sharded(source, 2000.0, opt);

  EXPECT_TRUE(r.tolerance_met);
  EXPECT_GE(r.levels, 1u);
  EXPECT_LE(r.union_paths, opt.merge_pool_cap);
  const std::size_t dense_gram_bytes = n * n * sizeof(double);
  EXPECT_LT(r.peak_panel_bytes, dense_gram_bytes / 4);
}

TEST(ShardedSelection, MemoryCapBoundsConcurrentShardLeases) {
  // Without a cap, every pool worker leases a shard working set (fill panel
  // + Gram) at once, so the peak scales with the thread count.  With
  // memory_cap_bytes set, the SELECT phase runs in waves and the peak must
  // stay near one wave's worth regardless of workers — and the result must
  // be bitwise unchanged (waves only sequence the indexed slots).
  const std::size_t n = 2000;
  const std::size_t m = 16;
  const linalg::Matrix a = correlated_rows(n, m, 6, 0.05, 81);
  const MatrixPanelSource source(a);

  ShardedSelectionOptions opt;
  opt.num_shards = 4;  // explicit: the pool fits merge_pool_cap on its own
  opt.block_rows = 512;
  opt.selection.epsilon = 0.05;
  const std::size_t shard_ws =
      panel_bytes(500, m) + panel_bytes(500, 500);  // one working set

  const std::size_t saved = util::thread_count();
  util::set_threads(4);
  const ShardedSelectionResult loose = select_paths_sharded(source, 2000.0, opt);
  opt.memory_cap_bytes = shard_ws + shard_ws / 2;  // room for exactly one
  const ShardedSelectionResult capped =
      select_paths_sharded(source, 2000.0, opt);
  util::set_threads(saved);

  EXPECT_EQ(capped.representatives, loose.representatives);
  EXPECT_EQ(capped.eps_r, loose.eps_r);  // bitwise
  EXPECT_EQ(capped.shards, loose.shards);
  // One shard working set plus the serial plan/verify streaming overhead
  // (sample panel, assignment blocks, representative panel + cross blocks).
  const std::size_t stream_slack = panel_bytes(n, m) + (1u << 20);
  EXPECT_LE(capped.peak_panel_bytes, shard_ws + stream_slack);
  EXPECT_GE(loose.peak_panel_bytes, capped.peak_panel_bytes);
}

// Satellite: sharded-then-repaired quality must stay within a pinned factor
// of the monolithic greedy sweep, across seeds and both shard policies.
TEST(ShardedSelection, QualityParityWithMonolithicAcrossSeedsAndPolicies) {
  constexpr double kSizeFactor = 2.0;  // pinned parity factor
  const double t_cons = 2000.0;
  for (const std::uint64_t seed : {101u, 202u, 303u}) {
    const std::size_t n = 1200;
    const linalg::Matrix a = correlated_rows(n, 40, 10, 0.05, seed);
    const std::vector<double> gates = synthetic_gate_counts(n, seed + 7);

    PathSelectionOptions mono_opt;
    mono_opt.strategy = SelectionStrategy::kGreedySweep;
    mono_opt.epsilon = 0.05;
    const PathSelectionResult mono =
        select_representative_paths(a, t_cons, mono_opt);
    EXPECT_LE(mono.eps_r, mono_opt.epsilon);

    for (const ShardPolicy policy :
         {ShardPolicy::kPathBalanced, ShardPolicy::kGateBalanced}) {
      const MatrixPanelSource source(a, gates);
      ShardedSelectionOptions opt;
      opt.policy = policy;
      opt.num_shards = 4;
      opt.selection = mono_opt;
      const ShardedSelectionResult sharded =
          select_paths_sharded(source, t_cons, opt);

      EXPECT_TRUE(sharded.tolerance_met)
          << "seed " << seed << " policy " << static_cast<int>(policy);
      // eps parity: the repaired global error may not exceed the pinned
      // factor of the monolithic error (or the tolerance itself, whichever
      // is larger — monolithic eps can sit at a rank cliff near zero).
      EXPECT_LE(sharded.eps_r,
                std::max(kSizeFactor * mono.eps_r, mono_opt.epsilon));
      // size parity: sharding may buy its memory bound with extra
      // representatives, but only up to the pinned factor.
      EXPECT_LE(sharded.representatives.size(),
                static_cast<std::size_t>(
                    kSizeFactor *
                    static_cast<double>(mono.representatives.size())) +
                    1);
    }
  }
}

TEST(ShardedSelection, RejectsDegenerateInputs) {
  const linalg::Matrix a = random_matrix(4, 3, 5);
  const MatrixPanelSource source(a);
  EXPECT_THROW(select_paths_sharded(source, 0.0, {}), std::invalid_argument);
  std::vector<int> empty;
  EXPECT_THROW(plan_shards(source, empty, {}), std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
