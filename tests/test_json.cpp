#include "util/json.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

namespace repro::util::json {
namespace {

Value parse_ok(const std::string& text) {
  Value v;
  std::string error;
  EXPECT_TRUE(parse(text, v, error)) << text << " -> " << error;
  return v;
}

void expect_reject(const std::string& text) {
  Value v;
  std::string error;
  EXPECT_FALSE(parse(text, v, error)) << text << " parsed unexpectedly";
  EXPECT_FALSE(error.empty());
}

TEST(JsonDouble, FiniteValuesRoundTripExactly) {
  const double cases[] = {0.0,     -0.0,   1.0,       0.1,  0.1 + 0.2,
                          1e-308,  1e308,  -123.456,  2.5e-17,
                          3.141592653589793, 4503599627370497.0};
  for (const double v : cases) {
    const std::string s = json_double(v);
    double back = 0.0;
    ASSERT_EQ(std::sscanf(s.c_str(), "%lf", &back), 1) << s;
    EXPECT_EQ(back, v) << s;  // exact bits, not approximate
  }
}

TEST(JsonDouble, NonFiniteBecomesNull) {
  EXPECT_EQ(json_double(std::numeric_limits<double>::quiet_NaN()), "null");
  EXPECT_EQ(json_double(std::numeric_limits<double>::infinity()), "null");
  EXPECT_EQ(json_double(-std::numeric_limits<double>::infinity()), "null");
}

TEST(JsonParse, Scalars) {
  EXPECT_EQ(parse_ok("null").kind, Kind::kNull);
  EXPECT_TRUE(parse_ok("true").boolean);
  EXPECT_FALSE(parse_ok("false").boolean);
  EXPECT_DOUBLE_EQ(parse_ok("2.5e2").number, 250.0);
  EXPECT_DOUBLE_EQ(parse_ok("-0.125").number, -0.125);
  EXPECT_EQ(parse_ok("\"hi\"").string, "hi");
  EXPECT_EQ(parse_ok("  42  ").number, 42.0);
}

TEST(JsonParse, StringsWithEscapes) {
  EXPECT_EQ(parse_ok("\"a\\n\\t\\\"b\\\\\"").string, "a\n\t\"b\\");
  EXPECT_EQ(parse_ok("\"\\u0041\"").string, "A");
  EXPECT_EQ(parse_ok("\"\\u00e9\"").string, "\xC3\xA9");          // é
  EXPECT_EQ(parse_ok("\"\\uD83D\\uDE00\"").string,
            "\xF0\x9F\x98\x80");  // surrogate pair
  expect_reject("\"\\uD83D\"");   // lone high surrogate
  expect_reject("\"\\x41\"");     // not a JSON escape
  expect_reject("\"unterminated");
  expect_reject("\"ctrl \x01 char\"");
}

TEST(JsonParse, Containers) {
  const Value arr = parse_ok("[1, [2, 3], {\"k\": null}]");
  ASSERT_EQ(arr.items.size(), 3u);
  EXPECT_EQ(arr.items[1].items[1].number, 3.0);
  EXPECT_TRUE(arr.items[2].find("k")->is_null());

  const Value obj = parse_ok("{\"a\": 1, \"b\": {\"c\": [true]}}");
  EXPECT_EQ(obj.number_or("a", 0.0), 1.0);
  EXPECT_TRUE(obj.find("b")->find("c")->items[0].boolean);
  EXPECT_EQ(obj.find("missing"), nullptr);
  EXPECT_EQ(obj.string_or("missing", "dflt"), "dflt");
  EXPECT_EQ(parse_ok("[]").items.size(), 0u);
  EXPECT_EQ(parse_ok("{}").members.size(), 0u);
}

TEST(JsonParse, RejectsNonFiniteLiterals) {
  // The whole point of the strict grammar: Python's default json.loads and
  // lax C parsers accept these; the CI validator and this parser must not.
  expect_reject("NaN");
  expect_reject("Infinity");
  expect_reject("-Infinity");
  expect_reject("nan");
  expect_reject("inf");
  expect_reject("{\"gauge\": nan}");
  expect_reject("[1, inf]");
}

TEST(JsonParse, RejectsMalformedDocuments) {
  expect_reject("");
  expect_reject("   ");
  expect_reject("{");
  expect_reject("[1, 2");
  expect_reject("[1,]");            // trailing comma
  expect_reject("{\"a\": 1,}");     // trailing comma
  expect_reject("{\"a\" 1}");       // missing colon
  expect_reject("{a: 1}");          // unquoted key
  expect_reject("[1] garbage");     // trailing garbage
  expect_reject("[1][2]");          // two documents
  expect_reject("01");              // leading zero
  expect_reject("1.");              // empty fraction
  expect_reject(".5");              // empty int part
  expect_reject("+1");              // leading plus
  expect_reject("1e");              // empty exponent
  expect_reject("'single'");        // wrong quotes
  expect_reject("undefined");
  expect_reject("// comment\n1");
  expect_reject("{\"a\": 1, \"a\": 2}");  // duplicate key
}

TEST(JsonParse, DepthLimitIsEnforced) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += '[';
  for (int i = 0; i < 200; ++i) deep += ']';
  expect_reject(deep);
  // 32 levels is comfortably inside the 64-level budget.
  std::string ok;
  for (int i = 0; i < 32; ++i) ok += '[';
  for (int i = 0; i < 32; ++i) ok += ']';
  parse_ok(ok);
}

TEST(JsonParse, ErrorsCarryOffsets) {
  Value v;
  std::string error;
  ASSERT_FALSE(parse("[1, nan]", v, error));
  EXPECT_NE(error.find("offset"), std::string::npos) << error;
}

TEST(JsonParse, ParseOrThrowThrows) {
  EXPECT_NO_THROW(parse_or_throw("{\"a\": [1, 2.5, \"x\"]}"));
  EXPECT_THROW(parse_or_throw("{broken"), std::invalid_argument);
}

TEST(JsonRoundTrip, EscapeThenParse) {
  const std::string awkward = "quote\" back\\slash \n\t ctrl\x01 end";
  const std::string doc = "{\"k\": \"" + escape(awkward) + "\"}";
  const Value v = parse_ok(doc);
  EXPECT_EQ(v.find("k")->string, awkward);
}

}  // namespace
}  // namespace repro::util::json
