// Shared fixtures for the test suite.
#pragma once

#include <string>
#include <vector>

#include "circuit/netlist.h"

namespace repro::test {

// The paper's Figure-1 subcircuit: two launch points, gates G1..G9, two
// capture points; four designated launch-to-capture paths merging at G5:
//   p1: G1 G3 G5 G7 G9,  p2: G1 G3 G5 G6 G8,
//   p3: G2 G4 G5 G6 G8,  p4: G2 G4 G5 G7 G9.
inline circuit::Netlist figure1_netlist() {
  using circuit::GateType;
  circuit::Netlist nl("figure1");
  const auto i1 = nl.add_gate("pi1", GateType::kInput);
  const auto i2 = nl.add_gate("pi2", GateType::kInput);
  const auto g1 = nl.add_gate("G1", GateType::kBuf);
  const auto g2 = nl.add_gate("G2", GateType::kBuf);
  const auto g3 = nl.add_gate("G3", GateType::kBuf);
  const auto g4 = nl.add_gate("G4", GateType::kBuf);
  const auto g5 = nl.add_gate("G5", GateType::kAnd);
  const auto g6 = nl.add_gate("G6", GateType::kBuf);
  const auto g7 = nl.add_gate("G7", GateType::kBuf);
  const auto g8 = nl.add_gate("G8", GateType::kNot);
  const auto g9 = nl.add_gate("G9", GateType::kNot);
  const auto o1 = nl.add_gate("po1", GateType::kOutput);
  const auto o2 = nl.add_gate("po2", GateType::kOutput);
  nl.connect(i1, g1);
  nl.connect(i2, g2);
  nl.connect(g1, g3);
  nl.connect(g2, g4);
  nl.connect(g3, g5);
  nl.connect(g4, g5);
  nl.connect(g5, g6);
  nl.connect(g5, g7);
  nl.connect(g6, g8);
  nl.connect(g7, g9);
  nl.connect(g8, o1);
  nl.connect(g9, o2);
  return nl;
}

// A simple chain: in -> g0 -> g1 -> ... -> g{n-1} -> out.
inline circuit::Netlist chain_netlist(int n) {
  using circuit::GateType;
  circuit::Netlist nl("chain");
  auto prev = nl.add_gate("in", GateType::kInput);
  for (int i = 0; i < n; ++i) {
    const auto g = nl.add_gate("g" + std::to_string(i), GateType::kBuf);
    nl.connect(prev, g);
    prev = g;
  }
  const auto o = nl.add_gate("out", GateType::kOutput);
  nl.connect(prev, o);
  return nl;
}

// A diamond with `width` parallel two-gate branches between a fork and a
// join (used for path-count and segment tests).
inline circuit::Netlist diamond_netlist(int width) {
  using circuit::GateType;
  circuit::Netlist nl("diamond");
  const auto in = nl.add_gate("in", GateType::kInput);
  const auto fork = nl.add_gate("fork", GateType::kBuf);
  nl.connect(in, fork);
  const auto join = nl.add_gate("join", GateType::kOr);
  for (int i = 0; i < width; ++i) {
    const auto a = nl.add_gate("a" + std::to_string(i), GateType::kNot);
    const auto b = nl.add_gate("b" + std::to_string(i), GateType::kNot);
    nl.connect(fork, a);
    nl.connect(a, b);
    nl.connect(b, join);
  }
  const auto o = nl.add_gate("out", GateType::kOutput);
  nl.connect(join, o);
  return nl;
}

}  // namespace repro::test
