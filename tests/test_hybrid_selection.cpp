#include "core/hybrid_selection.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include <memory>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "test_helpers.h"
#include "timing/segments.h"
#include "variation/variation_model.h"

namespace repro::core {
namespace {

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<variation::SpatialModel> spatial;
  std::unique_ptr<variation::VariationModel> model;
  double t_cons = 0.0;

  explicit Fixture(const std::string& bench, std::size_t max_paths)
      : nl(circuit::generate_benchmark(bench)) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = max_paths});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<variation::SpatialModel>(3);
    model = std::make_unique<variation::VariationModel>(*tg, *spatial, paths,
                                                        dec, variation::VariationOptions{});
    double worst = 0.0;
    for (std::size_t p = 0; p < paths.size(); ++p) {
      worst = std::max(worst, model->mu_paths()[p]);
    }
    t_cons = worst;
  }
};

TEST(Hybrid, AchievesToleranceAnalytically) {
  Fixture f("s1196", 150);
  HybridOptions opt;
  opt.epsilon = 0.08;
  const HybridResult r = run_hybrid_selection(
      f.model->a(), f.model->mu_paths(), f.model->g(), f.model->sigma(),
      f.model->mu_segments(), f.t_cons, 0.04, opt);
  EXPECT_LE(r.eps_achieved, opt.epsilon * 1.05);
  EXPECT_GT(r.exact_rank, 0u);
}

TEST(Hybrid, MeasurementCountBelowExactRank) {
  Fixture f("s1196", 200);
  HybridOptions opt;
  opt.epsilon = 0.08;
  const HybridResult r = run_hybrid_selection(
      f.model->a(), f.model->mu_paths(), f.model->g(), f.model->sigma(),
      f.model->mu_segments(), f.t_cons, 0.04, opt);
  // The whole point of the hybrid scheme: fewer measurements than the exact
  // path selection.
  EXPECT_LT(r.rep_paths.size() + r.rep_segments.size(), r.exact_rank);
}

TEST(Hybrid, InvalidEpsPrimeThrows) {
  Fixture f("s1196", 30);
  HybridOptions opt;
  opt.epsilon = 0.08;
  EXPECT_THROW((void)run_hybrid_selection(f.model->a(), f.model->mu_paths(),
                                          f.model->g(), f.model->sigma(),
                                          f.model->mu_segments(), f.t_cons,
                                          0.08, opt),
               std::invalid_argument);
  EXPECT_THROW((void)run_hybrid_selection(f.model->a(), f.model->mu_paths(),
                                          f.model->g(), f.model->sigma(),
                                          f.model->mu_segments(), f.t_cons,
                                          0.0, opt),
               std::invalid_argument);
}

TEST(Hybrid, PredictorCoversAllUnmeasuredPaths) {
  Fixture f("s1196", 120);
  HybridOptions opt;
  opt.epsilon = 0.08;
  const HybridResult r = run_hybrid_selection(
      f.model->a(), f.model->mu_paths(), f.model->g(), f.model->sigma(),
      f.model->mu_segments(), f.t_cons, 0.05, opt);
  EXPECT_EQ(r.predictor.remaining.size() + r.rep_paths.size(),
            f.paths.size());
}

TEST(Hybrid, PruningDropsRedundantMeasurements) {
  Fixture f("s1196", 100);
  HybridOptions no_prune;
  no_prune.epsilon = 0.08;
  no_prune.prune_redundant = false;
  HybridOptions prune = no_prune;
  prune.prune_redundant = true;
  const HybridResult a = run_hybrid_selection(
      f.model->a(), f.model->mu_paths(), f.model->g(), f.model->sigma(),
      f.model->mu_segments(), f.t_cons, 0.04, no_prune);
  const HybridResult b = run_hybrid_selection(
      f.model->a(), f.model->mu_paths(), f.model->g(), f.model->sigma(),
      f.model->mu_segments(), f.t_cons, 0.04, prune);
  EXPECT_LE(b.rep_paths.size() + b.rep_segments.size(),
            a.rep_paths.size() + a.rep_segments.size());
  // Pruning must not degrade the achieved error materially.
  EXPECT_LE(b.eps_achieved, std::max(a.eps_achieved * 1.10, 0.08));
}

TEST(Hybrid, SweepPicksMinimumCost) {
  Fixture f("s1196", 120);
  HybridOptions opt;
  opt.epsilon = 0.08;
  const std::vector<double> sweep{0.02, 0.04, 0.06};
  const HybridResult best = sweep_hybrid_selection(
      f.model->a(), f.model->mu_paths(), f.model->g(), f.model->sigma(),
      f.model->mu_segments(), f.t_cons, sweep, opt);
  for (double ep : sweep) {
    const HybridResult r = run_hybrid_selection(
        f.model->a(), f.model->mu_paths(), f.model->g(), f.model->sigma(),
        f.model->mu_segments(), f.t_cons, ep, opt);
    EXPECT_LE(best.rep_paths.size() + best.rep_segments.size(),
              r.rep_paths.size() + r.rep_segments.size());
  }
}

TEST(Hybrid, EmptySweepThrows) {
  Fixture f("s1196", 30);
  EXPECT_THROW((void)sweep_hybrid_selection(
                   f.model->a(), f.model->mu_paths(), f.model->g(),
                   f.model->sigma(), f.model->mu_segments(), f.t_cons, {},
                   HybridOptions{}),
               std::invalid_argument);
}

TEST(Hybrid, Figure1NeedsAtMostThreeMeasurements) {
  circuit::Netlist nl = test::figure1_netlist();
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const timing::TimingGraph tg(nl, lib);
  auto paths = timing::enumerate_worst_paths(tg, {.max_paths = 10});
  const auto dec = timing::extract_segments(nl, paths);
  const variation::SpatialModel spatial(3);
  const variation::VariationModel model(tg, spatial, paths, dec, {});
  double worst = 0.0;
  for (double mu : model.mu_paths()) worst = std::max(worst, mu);
  HybridOptions opt;
  opt.epsilon = 0.08;
  const HybridResult r = run_hybrid_selection(
      model.a(), model.mu_paths(), model.g(), model.sigma(),
      model.mu_segments(), worst, 0.04, opt);
  EXPECT_LE(r.rep_paths.size() + r.rep_segments.size(), 3u);
}

}  // namespace
}  // namespace repro::core
