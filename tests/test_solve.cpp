#include "linalg/solve.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

TEST(Rank, FullAndDeficient) {
  EXPECT_EQ(rank(random_matrix(10, 6, 1)), 6u);
  const Matrix low = multiply(random_matrix(10, 2, 2), random_matrix(2, 6, 3));
  EXPECT_EQ(rank(low), 2u);
  EXPECT_EQ(rank(Matrix(4, 4)), 0u);
}

TEST(PseudoInverse, MoorePenroseConditions) {
  const Matrix a = multiply(random_matrix(8, 3, 4), random_matrix(3, 6, 5));
  const Matrix p = pseudo_inverse(a);
  // A P A = A ; P A P = P ; (A P)^T = A P ; (P A)^T = P A.
  EXPECT_LT(max_abs_diff(multiply(multiply(a, p), a), a), 1e-9);
  EXPECT_LT(max_abs_diff(multiply(multiply(p, a), p), p), 1e-9);
  const Matrix ap = multiply(a, p);
  EXPECT_LT(max_abs_diff(ap, ap.transposed()), 1e-9);
  const Matrix pa = multiply(p, a);
  EXPECT_LT(max_abs_diff(pa, pa.transposed()), 1e-9);
}

TEST(PseudoInverse, InverseForSquareNonsingular) {
  const Matrix a = random_matrix(7, 7, 6);
  const Matrix p = pseudo_inverse(a);
  EXPECT_LT(max_abs_diff(multiply(a, p), Matrix::identity(7)), 1e-8);
}

TEST(Lstsq, MatchesQrOnTallFullRank) {
  const Matrix a = random_matrix(20, 5, 7);
  util::Rng rng(70);
  Vector b(20);
  for (double& v : b) v = rng.normal();
  const Vector x = lstsq(a, b);
  // Normal equations residual.
  Vector r = matvec(a, x);
  for (std::size_t i = 0; i < b.size(); ++i) r[i] -= b[i];
  const Vector atr = matvec_transposed(a, r);
  for (double v : atr) EXPECT_NEAR(v, 0.0, 1e-10);
}

TEST(Lstsq, MinimumNormSolutionWhenUnderdetermined) {
  // x = A^+ b is the minimum-norm solution: it lies in the row space.
  const Matrix a = random_matrix(3, 8, 8);
  Vector b{1.0, 2.0, 3.0};
  const Vector x = lstsq(a, b);
  const Vector ax = matvec(a, x);
  for (std::size_t i = 0; i < 3; ++i) EXPECT_NEAR(ax[i], b[i], 1e-10);
  // Any null-space perturbation increases the norm: check x ⟂ null space by
  // verifying x = A^T y for some y (residual of projecting onto row space).
  const Matrix at_pinv = pseudo_inverse(a.transposed());
  const Vector y = matvec(at_pinv, x);
  const Vector back = matvec_transposed(a, y);
  for (std::size_t i = 0; i < x.size(); ++i) EXPECT_NEAR(back[i], x[i], 1e-9);
}

TEST(SpdSolve, MatchesDirectSolve) {
  const Matrix b = random_matrix(9, 9, 9);
  const Matrix s = gram(b);
  util::Rng rng(90);
  Vector rhs(9);
  for (double& v : rhs) v = rng.normal();
  const Vector x = spd_solve(s, rhs);
  const Vector sx = matvec(s, x);
  for (std::size_t i = 0; i < 9; ++i) EXPECT_NEAR(sx[i], rhs[i], 1e-8);
}

TEST(SpdSolve, SingularGramRegularized) {
  // Rank-deficient Gram: the regularized solve must still satisfy S x ~ rhs
  // when rhs lies in the range of S.
  const Matrix b = random_matrix(6, 2, 10);
  const Matrix s = gram(b);  // rank 2
  const Vector in_range = matvec(s, Vector(6, 0.1));
  const Vector x = spd_solve(s, in_range);
  const Vector sx = matvec(s, x);
  for (std::size_t i = 0; i < 6; ++i) EXPECT_NEAR(sx[i], in_range[i], 1e-5);
}

TEST(Condest, IdentityAndScaledDiagonal) {
  EXPECT_NEAR(condest_spd(Matrix::identity(6)), 1.0, 1e-12);
  // diag(1, ..., 1e-6): cond_1 = 1e6 exactly; the estimator is exact for
  // diagonal matrices.
  Vector d(5, 1.0);
  d.back() = 1e-6;
  EXPECT_NEAR(condest_spd(Matrix::diagonal(d)), 1e6, 1.0);
}

TEST(Condest, LowerBoundsTrueCondition) {
  // Hager's estimate never exceeds the true cond_1 and is rarely far below.
  const Matrix a = random_matrix(12, 12, 21);
  const Matrix s = gram(a);  // SPD with interesting conditioning
  const Matrix sinv = pseudo_inverse(s);
  const double exact = one_norm(s) * one_norm(sinv);
  const double est = condest_spd(s);
  EXPECT_LE(est, exact * (1.0 + 1e-9));
  EXPECT_GE(est, 0.1 * exact);
}

TEST(Condest, SingularIsInfinite) {
  EXPECT_TRUE(std::isinf(condest_spd(Matrix(3, 3))));
}

TEST(SpdSolveRobust, WellConditionedMatchesPlainSolve) {
  const Matrix s = gram(random_matrix(8, 10, 22));
  const Matrix b = random_matrix(8, 3, 23);
  SpdSolveInfo info;
  const Matrix x = spd_solve_robust(s, b, &info);
  EXPECT_TRUE(info.ok);
  EXPECT_FALSE(info.regularized);
  EXPECT_GT(info.condition, 0.0);
  EXPECT_LT(max_abs_diff(multiply(s, x), b), 1e-6);
}

TEST(SpdSolveRobust, SingularGramTriggersReportedRidge) {
  // rank-2 Gram of an 6x2-derived matrix: singular, needs the ridge.
  const Matrix a = multiply(random_matrix(6, 2, 24), random_matrix(2, 9, 25));
  const Matrix s = gram(a);
  const Matrix b = random_matrix(6, 1, 26);
  SpdSolveInfo info;
  const Matrix x = spd_solve_robust(s, b, &info);
  EXPECT_TRUE(info.ok);
  EXPECT_TRUE(info.regularized);
  EXPECT_GT(info.ridge, 0.0);
  EXPECT_GT(info.condition, 1e12);  // original system was (near) singular
  for (std::size_t i = 0; i < x.rows(); ++i) {
    EXPECT_TRUE(std::isfinite(x(i, 0)));
  }
}

TEST(SpdSolveRobust, NonFiniteInputFailsWithoutThrowing) {
  Matrix s = Matrix::identity(3);
  s(1, 1) = std::numeric_limits<double>::quiet_NaN();
  SpdSolveInfo info;
  EXPECT_NO_THROW({
    (void)spd_solve_robust(s, Matrix(3, 1), &info);
  });
  EXPECT_FALSE(info.ok);
}

// Streaming-covariance collapse: repeated measurement downdates
//   P <- P - (1 - eps) (P v)(P v)^T / (v^T P v)
// each shrink the P-weighted direction v to eps of its prior size — the way
// a streaming information matrix degenerates after absorbing many
// near-duplicate dies.  After rank(P)-1 downdates the spectrum spans ~1/eps.
Matrix collapse_by_rank_one_downdates(std::size_t n, double eps,
                                      std::size_t steps) {
  Matrix p = Matrix::identity(n);
  for (std::size_t t = 0; t < steps; ++t) {
    Vector v(n, 0.0);
    v[t] = 1.0;
    v[(t + 1) % n] = 0.5;  // off-axis so the downdates couple coordinates
    Vector pv(n, 0.0);
    double alpha = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) pv[i] += p(i, j) * v[j];
      alpha += v[i] * pv[i];
    }
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) {
        p(i, j) -= (1.0 - eps) * pv[i] * pv[j] / alpha;
      }
    }
  }
  return p;
}

TEST(Condest, RankOneDowndateCollapseIsTracked) {
  // The estimate must grow with every collapsed direction, ending far above
  // the robust-solve regularization threshold.
  double prev = condest_spd(Matrix::identity(6));
  EXPECT_NEAR(prev, 1.0, 1e-12);
  for (std::size_t steps = 1; steps + 1 < 6; ++steps) {
    const Matrix collapsed = collapse_by_rank_one_downdates(6, 1e-14, steps);
    const double c = condest_spd(collapsed);
    EXPECT_GE(c, prev);
    prev = c;
  }
  EXPECT_GE(prev, 1e12);
}

TEST(SpdSolveRobust, CollapsedInformationMatrixTakesReportedRidgePath) {
  const Matrix p = collapse_by_rank_one_downdates(6, 1e-15, 5);
  Vector b(6, 1.0);
  SpdSolveInfo info;
  const Vector x = spd_solve_robust(p, b, &info);
  EXPECT_TRUE(info.ok);
  EXPECT_TRUE(info.regularized);   // the ridge path engaged...
  EXPECT_GT(info.ridge, 0.0);      // ...and reported its strength
  EXPECT_GT(info.condition, 1e12); // original system was numerically singular
  for (double xi : x) EXPECT_TRUE(std::isfinite(xi));
}

TEST(SpdSolveRobust, VectorOverloadMatchesMatrix) {
  const Matrix s = gram(random_matrix(5, 7, 27));
  Vector b(5);
  for (std::size_t i = 0; i < 5; ++i) b[i] = static_cast<double>(i) - 2.0;
  Matrix bm(5, 1);
  for (std::size_t i = 0; i < 5; ++i) bm(i, 0) = b[i];
  SpdSolveInfo iv, im;
  const Vector xv = spd_solve_robust(s, b, &iv);
  const Matrix xm = spd_solve_robust(s, bm, &im);
  ASSERT_TRUE(iv.ok);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_DOUBLE_EQ(xv[i], xm(i, 0));
}

}  // namespace
}  // namespace repro::linalg
