#include "linalg/qr_colpivot.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>

#include "linalg/gemm.h"
#include "linalg/qr.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

TEST(Qrcp, PermIsValidPermutation) {
  const QrcpResult f = qr_colpivot(random_matrix(8, 12, 1));
  std::vector<int> p = f.perm;
  std::sort(p.begin(), p.end());
  std::vector<int> expect(12);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(p, expect);
}

TEST(Qrcp, RDiagonalNonIncreasing) {
  const QrcpResult f = qr_colpivot(random_matrix(30, 20, 2));
  for (std::size_t k = 1; k < f.rdiag_abs.size(); ++k) {
    // Pivoting guarantees a (nearly) non-increasing diagonal; allow tiny
    // numerical wiggle.
    EXPECT_LE(f.rdiag_abs[k], f.rdiag_abs[k - 1] * (1.0 + 1e-10));
  }
}

TEST(Qrcp, FirstPivotIsLargestColumn) {
  Matrix a(5, 3);
  // Column 1 has clearly the largest norm.
  for (std::size_t i = 0; i < 5; ++i) {
    a(i, 0) = 0.1;
    a(i, 1) = 10.0;
    a(i, 2) = 1.0;
  }
  const QrcpResult f = qr_colpivot(a);
  EXPECT_EQ(f.perm[0], 1);
}

TEST(Qrcp, FullRankDetected) {
  const QrcpResult f = qr_colpivot(random_matrix(10, 6, 3));
  EXPECT_EQ(qrcp_rank(f), 6u);
}

TEST(Qrcp, RankDeficiencyDetected) {
  // Build a 10x6 matrix of rank 3: product of 10x3 and 3x6.
  const Matrix b = random_matrix(10, 3, 4);
  const Matrix c = random_matrix(3, 6, 5);
  const QrcpResult f = qr_colpivot(multiply(b, c));
  EXPECT_EQ(qrcp_rank(f), 3u);
}

TEST(Qrcp, ZeroMatrixHasRankZero) {
  const QrcpResult f = qr_colpivot(Matrix(4, 4));
  EXPECT_EQ(qrcp_rank(f), 0u);
}

TEST(Qrcp, MaxStepsLimitsWork) {
  const QrcpResult f = qr_colpivot(random_matrix(20, 20, 6), 5);
  EXPECT_EQ(f.tau.size(), 5u);
  EXPECT_EQ(f.rdiag_abs.size(), 5u);
  // perm still covers all columns.
  EXPECT_EQ(f.perm.size(), 20u);
}

TEST(Qrcp, ExplicitToleranceRank) {
  Matrix a = Matrix::identity(4);
  a(3, 3) = 1e-9;
  const QrcpResult f = qr_colpivot(a);
  EXPECT_EQ(qrcp_rank(f, 1e-6), 3u);
  EXPECT_EQ(qrcp_rank(f, 1e-12), 4u);
}

TEST(Qrcp, SelectedColumnsSpanRowSpace) {
  // Rank-4 wide matrix: the 4 pivot columns must reproduce every column via
  // least squares (residual ~ 0).
  const Matrix b = random_matrix(12, 4, 7);
  const Matrix c = random_matrix(4, 30, 8);
  const Matrix a = multiply(b, c);
  const QrcpResult f = qr_colpivot(a);
  ASSERT_EQ(qrcp_rank(f), 4u);
  std::vector<int> pivots(f.perm.begin(), f.perm.begin() + 4);
  const Matrix a_sel = a.select_cols(pivots);  // 12 x 4
  // Projector residual: A - A_sel (A_sel^+ A).
  const Matrix g = gram_t(a_sel);              // 4x4
  const Matrix cross = multiply_at(a_sel, a);  // 4 x 30
  // Solve G X = cross.
  Matrix x(4, a.cols());
  {
    // Small dense solve via Gaussian elimination through gemm-free path:
    // use QR least squares column by column.
    for (std::size_t j = 0; j < a.cols(); ++j) {
      Vector col(a.rows());
      for (std::size_t i = 0; i < a.rows(); ++i) col[i] = a(i, j);
      const Vector sol = qr_least_squares(a_sel, col);
      for (std::size_t i = 0; i < 4; ++i) x(i, j) = sol[i];
    }
  }
  EXPECT_LT(max_abs_diff(multiply(a_sel, x), a), 1e-9);
  (void)g;
  (void)cross;
}

}  // namespace
}  // namespace repro::linalg
