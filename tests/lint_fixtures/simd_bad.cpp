// Deliberate simd-confinement violations: raw intrinsics in a file outside
// src/linalg/simd/.  Expected findings: the <immintrin.h> include, the
// __m256d type, _mm256_loadu_pd, and _mm256_storeu_pd (4), plus one NEON
// load (1); the _mm256_add_pd is suppressed in-source (1 suppression).
#include <immintrin.h>

void fixture_axpy(const double* x, double* y) {
  __m256d vx = _mm256_loadu_pd(x);
  // repro-lint: allow(simd-confinement)
  vx = _mm256_add_pd(vx, vx);
  _mm256_storeu_pd(y, vx);
}

double fixture_neon_load(const double* x) { return vld1q_f64(x)[0]; }
