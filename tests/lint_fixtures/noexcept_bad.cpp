// Deliberate noexcept-boundary violation: a noexcept function reaches a
// throwing callee with no try/catch in between — the throw would call
// std::terminate.
#include <stdexcept>

int parse_positive(int v) {
  if (v < 0) throw std::invalid_argument("negative");
  return v;
}

int checked_total(int a, int b) noexcept {  // noexcept-boundary
  return parse_positive(a) + parse_positive(b);
}
