// Deliberate lock-order violations: two code paths take the same pair of
// mutexes in opposite orders (the classic AB/BA deadlock), plus one path
// that re-locks a mutex it already holds.
#include <mutex>

class InvertedPair {
 public:
  void lock_ab();
  void lock_ba();
  void relock();

 private:
  std::mutex order_a_;
  std::mutex order_b_;
};

void InvertedPair::lock_ab() {
  std::lock_guard<std::mutex> la(order_a_);
  std::lock_guard<std::mutex> lb(order_b_);  // lock-order: a_ -> b_ edge
}

void InvertedPair::lock_ba() {
  std::lock_guard<std::mutex> lb(order_b_);
  std::lock_guard<std::mutex> la(order_a_);  // lock-order: b_ -> a_ edge
}

void InvertedPair::relock() {
  std::lock_guard<std::mutex> l1(order_a_);
  std::lock_guard<std::mutex> l2(order_a_);  // lock-order: self-deadlock
}
