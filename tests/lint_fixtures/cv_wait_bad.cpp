// Deliberate condition-variable misuse: wait without a predicate.  A
// spurious wakeup (or a notify that raced ahead of the wait) leaks the
// thread out of the loop with the condition still false.
#include <condition_variable>
#include <mutex>

class LeakyGate {
 public:
  void pass();

 private:
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  bool open_ = false;
};

void LeakyGate::pass() {
  std::unique_lock<std::mutex> lk(gate_mu_);
  gate_cv_.wait(lk);  // cv-wait-predicate: no predicate overload
}
