#include <ctime>
#include <iostream>

#include "zeta.h"
#include "alpha.h"
#include <vector>

inline int fixture_clock() { return 0; }
