// Counterpart of lock_order_bad.cpp: every path agrees on one global
// acquisition order (a before b), and the hand-off path drops the first
// lock before taking the second — no cycle, no finding.
#include <mutex>

class OrderedPair {
 public:
  void both();
  void handoff();

 private:
  std::mutex ordered_a_;
  std::mutex ordered_b_;
};

void OrderedPair::both() {
  std::lock_guard<std::mutex> la(ordered_a_);
  std::lock_guard<std::mutex> lb(ordered_b_);
}

void OrderedPair::handoff() {
  std::unique_lock<std::mutex> la(ordered_a_);
  la.unlock();
  std::lock_guard<std::mutex> lb(ordered_b_);
}
