#include "util/rng.h"

void fixture(util::Rng& rng, std::vector<double>& out) {
  util::parallel_for(0, out.size(), 64, [&](std::size_t b, std::size_t e) {
    for (std::size_t k = b; k < e; ++k) {
      out[k] = rng.normal();
      util::telemetry::count("fixture.samples", 1);
    }
  });
  util::parallel_for(0, out.size(), 64, [&](std::size_t b, std::size_t e) {
    util::Rng local = util::Rng::stream(7, b);
    for (std::size_t k = b; k < e; ++k) out[k] = local.normal();
  });
}
