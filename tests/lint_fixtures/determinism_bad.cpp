#include <cstdlib>

int bad_seed() {
  int x = rand();
  srand(42);
  std::random_device rd;
  std::mt19937 gen(rd());
  long t = time(nullptr);
  auto now = std::chrono::system_clock::now();
  auto ok = std::chrono::steady_clock::now();
  int y = rand();  // repro-lint: allow(determinism)
  return x + y + gen() + t + static_cast<int>(now.time_since_epoch().count());
}
