// Counterpart of cv_wait_bad.cpp: the predicate overload re-checks the
// protocol state on every wakeup, so spurious wakeups are harmless.
#include <condition_variable>
#include <mutex>

class SafeGate {
 public:
  void pass();

 private:
  std::mutex safe_mu_;
  std::condition_variable safe_cv_;
  bool open_ = false;
};

void SafeGate::pass() {
  std::unique_lock<std::mutex> lk(safe_mu_);
  safe_cv_.wait(lk, [&] { return open_; });
}
