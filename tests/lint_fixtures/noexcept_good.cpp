// Counterpart of noexcept_bad.cpp: the boundary catches everything its
// throwing callee can produce, so nothing can escape the noexcept frame.
#include <stdexcept>

int parse_positive_checked(int v) {
  if (v < 0) throw std::invalid_argument("negative");
  return v;
}

int checked_total_guarded(int a, int b) noexcept {
  try {
    return parse_positive_checked(a) + parse_positive_checked(b);
  } catch (...) {
    return 0;
  }
}
