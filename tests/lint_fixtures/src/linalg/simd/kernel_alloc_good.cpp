// Counterpart of kernel_alloc_bad.cpp: the kernel works entirely in
// caller-provided storage — scratch is passed in, output is written in
// place, nothing allocates.
#include <cstddef>

void accumulate_tile_inplace(const double* x, double* scratch, double* out,
                             std::size_t n) {
  for (std::size_t i = 0; i < n; ++i) scratch[i] = x[i] * 2.0;
  for (std::size_t i = 0; i < n; ++i) out[i] += scratch[i];
}
