// Deliberate hot-path-alloc violations: a micro-kernel that allocates its
// scratch buffer per call and grows a vector inside the element loop.  The
// path lives under src/linalg/simd/ so the default hot_alloc_dirs filter
// applies, mirroring the contracts fixture trick.
#include <cstddef>
#include <vector>

void accumulate_tile(const double* x, double* out, std::size_t n) {
  std::vector<double> tmp(n);  // hot-path-alloc: per-call scratch
  std::vector<double> history;
  for (std::size_t i = 0; i < n; ++i) {
    tmp[i] = x[i] * 2.0;
    history.push_back(tmp[i]);  // hot-path-alloc: growth in the element loop
  }
  for (std::size_t i = 0; i < n; ++i) out[i] += tmp[i];
}
