// Deliberate hot-path-alloc violations in a panel provider: this file is NOT
// under src/linalg/simd/, so the findings come from the hot_alloc_functions
// name list ("MatrixPanelSource::fill_rows"), exercising the qualified-name
// scoping that guards the per-shard inner loop of the sharded selection
// pipeline (core/panel_source.h documents the no-allocation contract).
#include <cstddef>
#include <vector>

struct MatrixPanelSource {
  void fill_rows(const int* ids, std::size_t count, const double* data,
                 std::size_t cols, double* panel);
};

void MatrixPanelSource::fill_rows(const int* ids, std::size_t count,
                                  const double* data, std::size_t cols,
                                  double* panel) {
  std::vector<double> staged(cols);  // hot-path-alloc: per-call scratch
  std::vector<std::size_t> visited;
  for (std::size_t r = 0; r < count; ++r) {
    const double* row = data + static_cast<std::size_t>(ids[r]) * cols;
    for (std::size_t j = 0; j < cols; ++j) staged[j] = row[j];
    visited.push_back(r);  // hot-path-alloc: growth in the row loop
    for (std::size_t j = 0; j < cols; ++j) panel[r * cols + j] = staged[j];
  }
}
