#include "util/contracts.h"

namespace repro::core {

double no_contract(const linalg::Matrix& a) { return a(0, 0); }

double with_contract(const linalg::Matrix& a) {
  REPRO_CHECK_DIM(a.rows(), a.cols(), "fixture: square");
  return a(0, 0);
}

// repro-lint: allow(contracts)
double waived(const linalg::Vector& v) { return v[0]; }

}  // namespace repro::core
