// Counterpart of panel_fill_bad.cpp: the provider fills the caller-shaped
// panel directly — rows are copied straight from the backing storage into the
// destination, no per-call scratch, no container growth.  This is the idiom
// src/core/panel_source.cpp uses for the per-shard streaming loop.
#include <algorithm>
#include <cstddef>

struct MatrixPanelSource {
  void fill_rows(const int* ids, std::size_t count, const double* data,
                 std::size_t cols, double* panel);
};

void MatrixPanelSource::fill_rows(const int* ids, std::size_t count,
                                  const double* data, std::size_t cols,
                                  double* panel) {
  for (std::size_t r = 0; r < count; ++r) {
    const double* row = data + static_cast<std::size_t>(ids[r]) * cols;
    std::copy(row, row + cols, panel + r * cols);
  }
}
