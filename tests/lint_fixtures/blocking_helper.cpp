// Helper TU for blocking_lock_bad.cpp: clean on its own (no lock held
// here), but it blocks — so a caller holding a lock inherits a
// blocking-under-lock finding through the cross-TU call graph.
#include <string>

bool send_all_frames(int fd, const std::string& buf) {
  return send_all(fd, buf.data(), buf.size());
}
