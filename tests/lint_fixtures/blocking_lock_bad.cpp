// Deliberate blocking-under-lock violations: a socket write inside a
// critical section, both directly and through a helper defined in another
// fixture TU (blocking_helper.cpp) — the latter is only visible to the
// cross-TU call graph.  The third method shows the suppression etiquette
// for a reviewed, by-design wait under a private lock.
#include <mutex>
#include <string>

bool send_all_frames(int fd, const std::string& buf);

class Outbox {
 public:
  void flush_locked(int fd);
  void enqueue_and_send(int fd);
  void single_flight(int fd);

 private:
  std::mutex outbox_mu_;
  std::string buf_;
};

void Outbox::flush_locked(int fd) {
  std::lock_guard<std::mutex> lk(outbox_mu_);
  send_all(fd, buf_.data(), buf_.size());  // blocking-under-lock: direct
}

void Outbox::enqueue_and_send(int fd) {
  std::lock_guard<std::mutex> lk(outbox_mu_);
  send_all_frames(fd, buf_);  // blocking-under-lock: via blocking_helper.cpp
}

void Outbox::single_flight(int fd) {
  std::lock_guard<std::mutex> lk(outbox_mu_);
  // By design: peers must wait for this send to finish (single-flight),
  // and outbox_mu_ protects nothing else.
  // repro-lint: allow(blocking-under-lock)
  send_all(fd, buf_.data(), buf_.size());
}
