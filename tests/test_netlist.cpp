#include "circuit/netlist.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace repro::circuit {
namespace {

// Builds the Figure-1 subcircuit of the paper: G1..G9 with four designated
// paths merging at G5.
Netlist figure1_netlist() {
  Netlist nl("figure1");
  const GateId i1 = nl.add_gate("pi1", GateType::kInput);
  const GateId i2 = nl.add_gate("pi2", GateType::kInput);
  const GateId g1 = nl.add_gate("G1", GateType::kBuf);
  const GateId g2 = nl.add_gate("G2", GateType::kBuf);
  const GateId g3 = nl.add_gate("G3", GateType::kBuf);
  const GateId g4 = nl.add_gate("G4", GateType::kBuf);
  const GateId g5 = nl.add_gate("G5", GateType::kAnd);
  const GateId g6 = nl.add_gate("G6", GateType::kBuf);
  const GateId g7 = nl.add_gate("G7", GateType::kBuf);
  const GateId g8 = nl.add_gate("G8", GateType::kNot);
  const GateId g9 = nl.add_gate("G9", GateType::kNot);
  const GateId o1 = nl.add_gate("po1", GateType::kOutput);
  const GateId o2 = nl.add_gate("po2", GateType::kOutput);
  nl.connect(i1, g1);
  nl.connect(i2, g2);
  nl.connect(g1, g3);
  nl.connect(g2, g4);
  nl.connect(g3, g5);
  nl.connect(g4, g5);
  nl.connect(g5, g6);
  nl.connect(g5, g7);
  nl.connect(g6, g8);
  nl.connect(g7, g9);
  nl.connect(g8, o1);
  nl.connect(g9, o2);
  return nl;
}

TEST(Netlist, AddAndFind) {
  Netlist nl;
  const GateId a = nl.add_gate("a", GateType::kInput);
  EXPECT_EQ(nl.find("a"), std::optional<GateId>(a));
  EXPECT_EQ(nl.find("missing"), std::nullopt);
}

TEST(Netlist, DuplicateNameThrows) {
  Netlist nl;
  nl.add_gate("x", GateType::kInput);
  EXPECT_THROW((void)nl.add_gate("x", GateType::kNand), std::invalid_argument);
}

TEST(Netlist, DffMustBeSplit) {
  Netlist nl;
  EXPECT_THROW((void)nl.add_gate("q", GateType::kDff), std::invalid_argument);
}

TEST(Netlist, ConnectUpdatesBothSides) {
  Netlist nl;
  const GateId a = nl.add_gate("a", GateType::kInput);
  const GateId b = nl.add_gate("b", GateType::kBuf);
  nl.connect(a, b);
  EXPECT_EQ(nl.gate(a).fanout.size(), 1u);
  EXPECT_EQ(nl.gate(b).fanin.front(), a);
}

TEST(Netlist, ConnectBadIdThrows) {
  Netlist nl;
  nl.add_gate("a", GateType::kInput);
  EXPECT_THROW(nl.connect(0, 5), std::out_of_range);
}

TEST(Netlist, InputsOutputsTracked) {
  const Netlist nl = figure1_netlist();
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 2u);
  EXPECT_EQ(nl.combinational_count(), 9u);
}

TEST(Netlist, TopologicalOrderRespectsEdges) {
  const Netlist nl = figure1_netlist();
  const auto order = nl.topological_order();
  ASSERT_EQ(order.size(), nl.size());
  std::vector<std::size_t> pos(nl.size());
  for (std::size_t i = 0; i < order.size(); ++i) {
    pos[static_cast<std::size_t>(order[i])] = i;
  }
  for (const Gate& g : nl.gates()) {
    const auto gid = *nl.find(g.name);
    for (GateId d : g.fanin) {
      EXPECT_LT(pos[static_cast<std::size_t>(d)],
                pos[static_cast<std::size_t>(gid)]);
    }
  }
}

TEST(Netlist, CycleDetected) {
  Netlist nl;
  const GateId a = nl.add_gate("a", GateType::kAnd);
  const GateId b = nl.add_gate("b", GateType::kAnd);
  nl.connect(a, b);
  nl.connect(b, a);
  EXPECT_THROW((void)nl.topological_order(), std::runtime_error);
}

TEST(Netlist, ValidateCleanCircuit) {
  EXPECT_TRUE(figure1_netlist().validate().empty());
}

TEST(Netlist, ValidateFlagsDanglingGate) {
  Netlist nl;
  nl.add_gate("orphan", GateType::kNand);  // combinational, no fanin
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
  EXPECT_NE(problems.front().find("no fanin"), std::string::npos);
}

TEST(Netlist, ValidateFlagsMultiInputInverter) {
  Netlist nl;
  const GateId a = nl.add_gate("a", GateType::kInput);
  const GateId b = nl.add_gate("b", GateType::kInput);
  const GateId inv = nl.add_gate("inv", GateType::kNot);
  nl.connect(a, inv);
  nl.connect(b, inv);
  const auto problems = nl.validate();
  ASSERT_FALSE(problems.empty());
}

TEST(Netlist, ValidateFlagsOutputWithTwoFanins) {
  Netlist nl;
  const GateId a = nl.add_gate("a", GateType::kInput);
  const GateId b = nl.add_gate("b", GateType::kInput);
  const GateId o = nl.add_gate("o", GateType::kOutput);
  nl.connect(a, o);
  nl.connect(b, o);
  EXPECT_FALSE(nl.validate().empty());
}

TEST(Netlist, DepthOfChain) {
  Netlist nl;
  GateId prev = nl.add_gate("in", GateType::kInput);
  for (int i = 0; i < 5; ++i) {
    const GateId g = nl.add_gate("g" + std::to_string(i), GateType::kBuf);
    nl.connect(prev, g);
    prev = g;
  }
  const GateId o = nl.add_gate("o", GateType::kOutput);
  nl.connect(prev, o);
  EXPECT_EQ(nl.depth(), 5u);
}

TEST(Netlist, DepthOfFigure1) {
  EXPECT_EQ(figure1_netlist().depth(), 5u);
}

}  // namespace
}  // namespace repro::circuit
