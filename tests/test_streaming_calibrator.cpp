#include "core/streaming_calibrator.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <vector>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/monte_carlo.h"
#include "core/subset_select.h"
#include "linalg/gemm.h"
#include "linalg/solve.h"
#include "timing/segments.h"
#include "util/rng.h"
#include "util/thread_pool.h"
#include "variation/variation_model.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Synthetic-model helpers: a small path/parameter system with a known
// systematic shift, so convergence is checkable against ground truth.
struct Synthetic {
  linalg::Matrix a;
  linalg::Vector mu;
  RobustPredictor predictor;

  Synthetic(std::size_t n_paths, std::size_t m, std::size_t n_rep,
            std::uint64_t seed)
      : a(random_matrix(n_paths, m, seed)), mu(n_paths, 500.0) {
    std::vector<int> rep;
    for (std::size_t i = 0; i < n_rep; ++i) rep.push_back(static_cast<int>(i));
    RobustOptions opt;
    opt.measurement_sigma_ps = 1.0;
    predictor = make_robust_path_predictor(a, mu, rep, {}, opt);
  }

  // Measured-slot delays of die `die` whose parameters are shift + v,
  // v ~ N(0, I) from the die's own stream.
  linalg::Vector die_measurements(std::uint64_t die,
                                  std::span<const double> shift) const {
    util::Rng rng = util::Rng::stream(0xd1e5, die);
    linalg::Vector x(a.cols());
    for (std::size_t i = 0; i < x.size(); ++i) {
      x[i] = rng.normal() + (shift.empty() ? 0.0 : shift[i]);
    }
    const auto& meas = predictor.base.measured_paths;
    linalg::Vector y(meas.size());
    for (std::size_t k = 0; k < meas.size(); ++k) {
      const auto p = static_cast<std::size_t>(meas[k]);
      y[k] = mu[p] + linalg::dot(a.row(p), x);
    }
    return y;
  }
};

// ---------------------------------------------------------------------------
// Failure contract: never throws, structured degradation.
// ---------------------------------------------------------------------------

TEST(StreamingCalibrator, UnusableBatchPredictorMakesUnusableStream) {
  const linalg::Matrix a = random_matrix(6, 10, 21);
  const linalg::Vector mu(6, 100.0);
  const RobustPredictor failed = make_robust_path_predictor(a, mu, {});
  ASSERT_FALSE(failed.status.usable());

  StreamingCalibrator cal(failed);
  EXPECT_EQ(cal.status().health, StreamHealth::kUnusable);
  EXPECT_FALSE(cal.status().message.empty());

  // Every die quarantines with a structured gate; predictions are the batch
  // predictor's nominal fallback.  No throw anywhere.
  const linalg::Vector meas(3, 100.0);
  DieRecord rec;
  EXPECT_NO_THROW(rec = cal.observe(0, meas));
  EXPECT_FALSE(rec.accepted);
  EXPECT_EQ(rec.gate, StreamGate::kStreamUnusable);
  EXPECT_EQ(cal.status().dies_quarantined, 1u);
  const RobustPrediction pr = cal.predict(meas);
  EXPECT_EQ(pr.health, PredictorHealth::kFailed);
}

TEST(StreamingCalibrator, MalformedDiesQuarantineWithStructuredReason) {
  Synthetic s(20, 12, 5, 22);
  ASSERT_TRUE(s.predictor.status.usable());
  StreamingCalibrator cal(s.predictor);
  ASSERT_EQ(cal.status().health, StreamHealth::kOk);

  // Wrong measurement count.
  DieRecord rec = cal.observe(0, linalg::Vector{1.0, 2.0});
  EXPECT_EQ(rec.gate, StreamGate::kSizeMismatch);
  // All slots invalid on this die.
  const linalg::Vector meas = s.die_measurements(0, {});
  const std::vector<char> none(meas.size(), 0);
  rec = cal.observe(1, meas, none);
  EXPECT_FALSE(rec.accepted);
  EXPECT_EQ(rec.gate, StreamGate::kNoUsableSlots);
  // All-NaN measurements.
  const linalg::Vector nans(meas.size(),
                            std::numeric_limits<double>::quiet_NaN());
  EXPECT_NO_THROW(rec = cal.observe(2, nans));
  EXPECT_FALSE(rec.accepted);

  EXPECT_EQ(cal.status().dies_seen, 3u);
  EXPECT_EQ(cal.status().dies_accepted, 0u);
  EXPECT_EQ(cal.status().dies_quarantined +
                cal.status().dies_rejected, 3u);
  // Gated dies leave the state untouched.
  EXPECT_EQ(cal.status().shift_norm, 0.0);

  // A sane die afterwards still updates: the stream survived the faults.
  rec = cal.observe(3, s.die_measurements(3, {}));
  EXPECT_TRUE(rec.accepted);
  EXPECT_EQ(cal.status().dies_accepted, 1u);
}

TEST(StreamingCalibrator, GrossWholeDieOutlierIsRejectedNotAbsorbed) {
  Synthetic s(24, 14, 6, 23);
  StreamingCalibrator cal(s.predictor);
  for (std::uint64_t die = 0; die < 20; ++die) {
    cal.observe(die, s.die_measurements(die, {}));
  }
  const double shift_before = cal.status().shift_norm;
  // A die whose every slot reads absurdly high (tester meltdown): either the
  // robust screening or the whole-die innovation gate must reject it.
  linalg::Vector bad = s.die_measurements(20, {});
  for (double& v : bad) v += 3000.0;
  const DieRecord rec = cal.observe(20, bad);
  EXPECT_FALSE(rec.accepted);
  EXPECT_TRUE(rec.gate == StreamGate::kExcessScreening ||
              rec.gate == StreamGate::kInnovationOutlier);
  // The rejected die did not move the state.
  EXPECT_EQ(cal.status().shift_norm, shift_before);
}

// ---------------------------------------------------------------------------
// Clean-stream behavior: acceptance, guard-band monotonicity, no drift flag.
// ---------------------------------------------------------------------------

TEST(StreamingCalibrator, CleanStreamTightensGuardbandMonotonically) {
  Synthetic s(30, 16, 6, 24);
  StreamingCalibrator cal(s.predictor);
  const double initial = cal.guardband();
  ASSERT_GT(initial, 0.0);

  double prev = initial;
  std::size_t accepted = 0;
  for (std::uint64_t die = 0; die < 120; ++die) {
    const DieRecord rec = cal.observe(die, s.die_measurements(die, {}));
    // Non-inflating at every die (gated dies keep the previous value).
    EXPECT_LE(rec.guardband, prev + 1e-12);
    prev = rec.guardband;
    if (rec.accepted) ++accepted;
  }
  EXPECT_GT(accepted, 100u);  // the gate passes a clean stream
  EXPECT_LT(cal.guardband(), 0.95 * initial);  // and information accumulated
  EXPECT_FALSE(cal.status().drift_flagged);
  EXPECT_EQ(cal.status().drift_flag_die, kNoDie);
  // Posterior variances stay non-negative.
  for (double q : cal.shift_variance()) EXPECT_GE(q, 0.0);
}

TEST(StreamingCalibrator, LearnsTheMeasurableImageOfASystematicShift) {
  Synthetic s(30, 16, 6, 25);
  StreamingCalibrator cal(s.predictor);

  // Common-mode systematic shift of one sigma total.
  const std::size_t m = s.a.cols();
  linalg::Vector shift(m, 1.0 / std::sqrt(static_cast<double>(m)));
  for (std::uint64_t die = 0; die < 300; ++die) {
    cal.observe(die, s.die_measurements(die, shift));
  }
  EXPECT_GT(cal.status().dies_accepted, 200u);
  EXPECT_GT(cal.status().shift_norm, 0.0);

  // The shift is only identifiable through the measured rows: compare images
  // under A_meas, not the raw parameter vectors.
  const linalg::Vector want = linalg::matvec(s.predictor.a_meas, shift);
  const linalg::Vector got = linalg::matvec(s.predictor.a_meas, cal.shift());
  double num = 0.0, den = 0.0;
  for (std::size_t i = 0; i < want.size(); ++i) {
    num += (got[i] - want[i]) * (got[i] - want[i]);
    den += want[i] * want[i];
  }
  ASSERT_GT(den, 0.0);
  EXPECT_LT(std::sqrt(num / den), 0.35);
}

// ---------------------------------------------------------------------------
// Drift detection: flags an injected shift, quiet on a clean stream.
// ---------------------------------------------------------------------------

TEST(StreamingCalibrator, CusumFlagsInjectedShiftQuietOnClean) {
  Synthetic s(30, 16, 6, 26);

  // Clean stream: no flag over a long run.
  StreamingCalibrator clean(s.predictor);
  for (std::uint64_t die = 0; die < 200; ++die) {
    clean.observe(die, s.die_measurements(die, {}));
  }
  EXPECT_FALSE(clean.status().drift_flagged);

  // Same stream with a mid-stream coherent shift: flagged, and quickly.  The
  // detector targets drift whose measurable image moves all slots the same
  // way (a fab excursion raises every delay), so inject the min-norm
  // parameter shift whose image is a uniform +6ps per measured slot.  A
  // common-mode *parameter* shift of this random Gaussian A would have a
  // sign-random image — coherent noise the detector rightly ignores.
  StreamingCalibrator drifted(s.predictor);
  const std::size_t start = 100;
  const linalg::Matrix g = linalg::gram(s.predictor.a_meas);
  linalg::Vector ones(g.rows(), 6.0);
  linalg::SpdSolveInfo info;
  const linalg::Vector w = linalg::spd_solve_robust(g, ones, &info);
  ASSERT_TRUE(info.ok);
  linalg::Vector shift(s.a.cols(), 0.0);
  for (std::size_t j = 0; j < g.rows(); ++j) {
    const auto row = s.predictor.a_meas.row(j);
    for (std::size_t i = 0; i < shift.size(); ++i) {
      shift[i] += row[i] * w[j];
    }
  }
  for (std::uint64_t die = 0; die < 200; ++die) {
    drifted.observe(
        die, s.die_measurements(die, die >= start ? std::span<const double>(shift)
                                                  : std::span<const double>()));
  }
  EXPECT_TRUE(drifted.status().drift_flagged);
  ASSERT_NE(drifted.status().drift_flag_die, kNoDie);
  EXPECT_GE(drifted.status().drift_flag_die, start);
  EXPECT_LE(drifted.status().drift_flag_die, start + 50);
  EXPECT_GT(drifted.status().drift_score, clean.status().drift_score);
}

// ---------------------------------------------------------------------------
// Streaming Monte-Carlo evaluation: determinism and batch parity.
// ---------------------------------------------------------------------------

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<variation::SpatialModel> spatial;
  std::unique_ptr<variation::VariationModel> model;

  explicit Fixture(std::size_t max_paths = 80)
      : nl(circuit::generate_benchmark("s1196")) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = max_paths});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<variation::SpatialModel>(3);
    model = std::make_unique<variation::VariationModel>(
        *tg, *spatial, paths, dec, variation::VariationOptions{});
  }
};

RobustPredictor fixture_predictor(const Fixture& f, std::size_t n_rep,
                                  const FaultSpec& spec) {
  const SubsetSelector sel(f.model->a());
  const auto order = sel.select(std::min(sel.rank(), n_rep + 8));
  std::vector<int> rep(order.begin(),
                       order.begin() + static_cast<std::ptrdiff_t>(
                                           std::min(n_rep, order.size())));
  RobustOptions opt;
  opt.backup_order = order;
  opt.measurement_sigma_ps = expected_noise_sigma(spec, f.model->mu_paths());
  return make_robust_path_predictor(f.model->a(), f.model->mu_paths(), rep,
                                    {}, opt);
}

TEST(StreamingMonteCarlo, BitIdenticalAcrossThreadCounts) {
  Fixture f;
  StreamingMcOptions opt;
  opt.mc.samples = 200;
  opt.mc.chunk = 32;
  opt.mc.seed = 321;
  opt.faults = without_dead_slots(default_fault_spec());
  opt.block = 64;  // several parallel generation blocks
  opt.drift.start_die = 120;
  opt.drift.magnitude = 2.0;
  const RobustPredictor p = fixture_predictor(f, 8, opt.faults);
  ASSERT_TRUE(p.status.usable());

  const std::size_t saved_threads = util::thread_count();
  std::vector<StreamingMcMetrics> runs;
  for (std::size_t nt : {1u, 4u, 8u}) {
    util::set_threads(nt);
    runs.push_back(evaluate_predictor_streaming(*f.model, p, opt));
  }
  util::set_threads(saved_threads);
  for (std::size_t k = 1; k < runs.size(); ++k) {
    // Exact equality: per-die RNG streams written to die-indexed staging,
    // sequential calibration pass in strict die order.
    EXPECT_EQ(runs[0].metrics.e1, runs[k].metrics.e1);
    EXPECT_EQ(runs[0].metrics.e2, runs[k].metrics.e2);
    EXPECT_EQ(runs[0].status.dies_accepted, runs[k].status.dies_accepted);
    EXPECT_EQ(runs[0].status.dies_rejected, runs[k].status.dies_rejected);
    EXPECT_EQ(runs[0].status.drift_score, runs[k].status.drift_score);
    EXPECT_EQ(runs[0].drift_flag_die, runs[k].drift_flag_die);
    EXPECT_EQ(runs[0].final_guardband, runs[k].final_guardband);
    ASSERT_EQ(runs[0].guardband_trajectory.size(),
              runs[k].guardband_trajectory.size());
    for (std::size_t i = 0; i < runs[0].guardband_trajectory.size(); ++i) {
      EXPECT_EQ(runs[0].guardband_trajectory[i],
                runs[k].guardband_trajectory[i]);
      EXPECT_EQ(runs[0].drift_trajectory[i], runs[k].drift_trajectory[i]);
    }
  }
}

TEST(StreamingMonteCarlo, CleanStreamMatchesBatchWithinTolerance) {
  Fixture f;
  FaultyMcOptions batch_opt;
  batch_opt.mc.samples = 300;
  batch_opt.mc.seed = 99;
  batch_opt.faults = without_dead_slots(default_fault_spec());
  const RobustPredictor p = fixture_predictor(f, 8, batch_opt.faults);
  ASSERT_TRUE(p.status.usable());
  const FaultyMcMetrics batch =
      evaluate_predictor_under_faults(*f.model, p, batch_opt);

  StreamingMcOptions opt;
  opt.mc = batch_opt.mc;  // same dies, same fault schedules
  opt.faults = batch_opt.faults;
  const StreamingMcMetrics stream =
      evaluate_predictor_streaming(*f.model, p, opt);

  // The acceptance bound from ISSUE 7: streaming e1 within 1.1x of batch on
  // the clean (drift-free) stream, guard-band monotone, no drift flag.
  ASSERT_GT(batch.metrics.e1, 0.0);
  EXPECT_LE(stream.metrics.e1, 1.1 * batch.metrics.e1);
  EXPECT_TRUE(stream.guardband_monotone);
  EXPECT_LT(stream.final_guardband, stream.initial_guardband);
  EXPECT_FALSE(stream.status.drift_flagged);
  EXPECT_GT(stream.status.dies_accepted, opt.mc.samples / 2);
}

TEST(StreamingMonteCarlo, InjectedDriftIsFlaggedWithinBudget) {
  Fixture f;
  StreamingMcOptions opt;
  opt.mc.samples = 300;
  opt.mc.seed = 7;
  opt.faults = without_dead_slots(default_fault_spec());
  opt.drift.start_die = 150;
  opt.drift.magnitude = 3.0;
  const RobustPredictor p = fixture_predictor(f, 8, opt.faults);
  ASSERT_TRUE(p.status.usable());

  const StreamingMcMetrics m = evaluate_predictor_streaming(*f.model, p, opt);
  EXPECT_TRUE(m.status.drift_flagged);
  ASSERT_NE(m.drift_flag_die, kNoDie);
  EXPECT_GE(m.drift_flag_die, opt.drift.start_die);
  EXPECT_LE(m.drift_flag_die, opt.drift.start_die + 60);
  ASSERT_EQ(m.drift_trajectory.size(), opt.mc.samples);
  // The CUSUM was quiet before the shift started.
  double pre = 0.0;
  for (std::size_t i = 0; i < opt.drift.start_die; ++i) {
    pre = std::max(pre, m.drift_trajectory[i]);
  }
  EXPECT_LT(pre, opt.stream.cusum_h);
}

TEST(StreamingMonteCarlo, DegenerateInputsAreDefined) {
  Fixture f(20);
  const RobustPredictor failed =
      make_robust_path_predictor(f.model->a(), f.model->mu_paths(), {});
  StreamingMcOptions opt;
  opt.mc.samples = 20;
  StreamingMcMetrics m;
  EXPECT_NO_THROW(m = evaluate_predictor_streaming(*f.model, failed, opt));
  EXPECT_EQ(m.status.health, StreamHealth::kUnusable);
  EXPECT_EQ(m.metrics.e1, 0.0);

  const SubsetSelector sel(f.model->a());
  const RobustPredictor p = make_robust_path_predictor(
      f.model->a(), f.model->mu_paths(), sel.select(4));
  opt.mc.samples = 0;
  EXPECT_NO_THROW(m = evaluate_predictor_streaming(*f.model, p, opt));
  EXPECT_EQ(m.metrics.samples, 0u);
}

}  // namespace
}  // namespace repro::core
