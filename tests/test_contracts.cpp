// Contract layer (src/util/contracts.h): in checked builds (Debug, or
// -DREPRO_CONTRACTS=ON) a violated precondition throws ContractViolation
// with file:line and the stated message; in Release the macros compile to
// nothing and the documented unconditional behavior is all that remains.
// Both sides are asserted here, branching on contracts_enabled().
#include "util/contracts.h"

#include <gtest/gtest.h>

#include <string>

#include "core/error_model.h"
#include "linalg/gemm.h"
#include "linalg/solve.h"

namespace {

using repro::util::ContractViolation;
using repro::util::contracts_enabled;

TEST(Contracts, MacroIsNoOpInReleaseAndThrowsWhenChecked) {
  if (contracts_enabled()) {
    EXPECT_THROW(REPRO_CHECK(false, "deliberate failure"), ContractViolation);
    EXPECT_NO_THROW(REPRO_CHECK(true, "holds"));
  } else {
    // Compiled out: a false condition must not evaluate, throw, or abort.
    EXPECT_NO_THROW(REPRO_CHECK(false, "compiled out"));
    EXPECT_NO_THROW(REPRO_CHECK_DIM(1, 2, "compiled out"));
  }
}

TEST(Contracts, ViolationRefinesInvalidArgument) {
  if (!contracts_enabled()) GTEST_SKIP() << "contracts compiled out";
  // A contract firing ahead of a function's documented unconditional
  // std::invalid_argument must not change what callers can catch.
  EXPECT_THROW(REPRO_CHECK(false, "hierarchy"), std::invalid_argument);
  EXPECT_THROW(REPRO_CHECK_DIM(1, 2, "hierarchy"), std::logic_error);
}

TEST(Contracts, ViolationMessageCarriesContext) {
  if (!contracts_enabled()) GTEST_SKIP() << "contracts compiled out";
  try {
    REPRO_CHECK_DIM(3, 5, "unit test context");
    FAIL() << "expected ContractViolation";
  } catch (const ContractViolation& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("unit test context"), std::string::npos) << what;
    EXPECT_NE(what.find("3"), std::string::npos) << what;
    EXPECT_NE(what.find("5"), std::string::npos) << what;
    EXPECT_NE(what.find("test_contracts.cpp"), std::string::npos) << what;
  }
}

TEST(Contracts, GemmInnerDimensionMismatch) {
  const repro::linalg::Matrix a(2, 3);
  const repro::linalg::Matrix b(4, 2);  // inner 3 != 4
  if (contracts_enabled()) {
    EXPECT_THROW(repro::linalg::multiply(a, b), ContractViolation);
  } else {
    // The unconditional API validation stays in Release.
    EXPECT_THROW(repro::linalg::multiply(a, b), std::invalid_argument);
  }
}

TEST(Contracts, SpdSolveRobustDimMismatch) {
  repro::linalg::Matrix s(3, 3);
  for (std::size_t i = 0; i < 3; ++i) s(i, i) = 1.0;
  const repro::linalg::Matrix b(2, 1);  // rhs rows 2 != 3

  if (contracts_enabled()) {
    // A shape mismatch is a caller bug, distinct from fault-injected *data*:
    // checked builds refuse it loudly.
    EXPECT_THROW(repro::linalg::spd_solve_robust(s, b, nullptr, 1e12),
                 ContractViolation);
  } else {
    // Release keeps the documented graceful path for noisy-silicon flows.
    repro::linalg::SpdSolveInfo info;
    const repro::linalg::Matrix x =
        repro::linalg::spd_solve_robust(s, b, &info, 1e12);
    EXPECT_FALSE(info.ok);
    EXPECT_EQ(x.rows(), s.rows());
  }
}

TEST(Contracts, SelectionErrorsFromGramRequiresSquare) {
  if (!contracts_enabled()) GTEST_SKIP() << "contracts compiled out";
  const repro::linalg::Matrix gram(4, 3);
  EXPECT_THROW(
      repro::core::selection_errors_from_gram(gram, {0}, 1.0, 3.0),
      ContractViolation);
}

TEST(Contracts, ValidCallsPassUnderContracts) {
  // The rolled-out checks must not reject well-formed inputs in any build.
  repro::linalg::Matrix a(2, 3);
  repro::linalg::Matrix b(3, 2);
  for (std::size_t i = 0; i < 2; ++i) {
    for (std::size_t j = 0; j < 3; ++j) {
      a(i, j) = static_cast<double>(i + j + 1);
      b(j, i) = static_cast<double>(i * j + 1);
    }
  }
  const repro::linalg::Matrix c = repro::linalg::multiply(a, b);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 2u);

  repro::linalg::Matrix gram = repro::linalg::gram(a);
  const repro::core::SelectionErrors errors =
      repro::core::selection_errors_from_gram(gram, {0}, 1.0, 3.0);
  EXPECT_GE(errors.eps_r, 0.0);
}

}  // namespace
