#include "util/stats.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace repro::util {
namespace {

TEST(Stats, MeanVarianceKnown) {
  std::vector<double> v{1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(v), 2.5);
  EXPECT_DOUBLE_EQ(variance(v), 1.25);
  EXPECT_DOUBLE_EQ(stddev(v), std::sqrt(1.25));
}

TEST(Stats, MinMax) {
  std::vector<double> v{3.0, -1.0, 7.0};
  EXPECT_DOUBLE_EQ(min_value(v), -1.0);
  EXPECT_DOUBLE_EQ(max_value(v), 7.0);
}

TEST(Stats, QuantileInterpolation) {
  std::vector<double> v{10.0, 20.0, 30.0, 40.0};
  EXPECT_DOUBLE_EQ(quantile(v, 0.0), 10.0);
  EXPECT_DOUBLE_EQ(quantile(v, 1.0), 40.0);
  EXPECT_DOUBLE_EQ(quantile(v, 0.5), 25.0);
}

TEST(Stats, QuantileEmptyThrows) {
  EXPECT_THROW((void)quantile({}, 0.5), std::invalid_argument);
}

TEST(Stats, NormalCdfKnownPoints) {
  EXPECT_NEAR(normal_cdf(0.0), 0.5, 1e-15);
  EXPECT_NEAR(normal_cdf(1.0), 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(-1.0), 1.0 - 0.8413447460685429, 1e-12);
  EXPECT_NEAR(normal_cdf(3.0), 0.9986501019683699, 1e-12);
}

TEST(Stats, NormalIcdfInvertsCdf) {
  for (double p : {0.001, 0.01, 0.1, 0.3, 0.5, 0.7, 0.9, 0.99, 0.999}) {
    EXPECT_NEAR(normal_cdf(normal_icdf(p)), p, 1e-10) << "p=" << p;
  }
}

TEST(Stats, NormalIcdfDomainChecked) {
  EXPECT_THROW((void)normal_icdf(0.0), std::invalid_argument);
  EXPECT_THROW((void)normal_icdf(1.0), std::invalid_argument);
}

TEST(Stats, CorrelationPerfectAndNone) {
  std::vector<double> a{1.0, 2.0, 3.0, 4.0};
  std::vector<double> b{2.0, 4.0, 6.0, 8.0};
  EXPECT_NEAR(correlation(a, b), 1.0, 1e-12);
  std::vector<double> c{-1.0, -2.0, -3.0, -4.0};
  EXPECT_NEAR(correlation(a, c), -1.0, 1e-12);
  std::vector<double> flat{5.0, 5.0, 5.0, 5.0};
  EXPECT_DOUBLE_EQ(correlation(a, flat), 0.0);
}

TEST(Stats, RunningStatsMatchesBatch) {
  Rng rng(5);
  std::vector<double> v(1000);
  RunningStats rs;
  for (double& x : v) {
    x = rng.normal(3.0, 2.0);
    rs.add(x);
  }
  EXPECT_EQ(rs.count(), v.size());
  EXPECT_NEAR(rs.mean(), mean(v), 1e-10);
  EXPECT_NEAR(rs.variance(), variance(v), 1e-8);
  EXPECT_DOUBLE_EQ(rs.min(), min_value(v));
  EXPECT_DOUBLE_EQ(rs.max(), max_value(v));
}

TEST(Stats, RunningStatsEmptyAndSingle) {
  RunningStats rs;
  EXPECT_EQ(rs.count(), 0u);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
  rs.add(7.0);
  EXPECT_DOUBLE_EQ(rs.mean(), 7.0);
  EXPECT_DOUBLE_EQ(rs.variance(), 0.0);
}

}  // namespace
}  // namespace repro::util
