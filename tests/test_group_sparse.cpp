#include "core/group_sparse.h"

#include <gtest/gtest.h>

#include <cmath>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::core {
namespace {

TEST(L1Ball, InsideUnchanged) {
  linalg::Vector v{0.2, -0.3};
  const linalg::Vector p = project_l1_ball(v, 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.2);
  EXPECT_DOUBLE_EQ(p[1], -0.3);
}

TEST(L1Ball, ProjectionHasCorrectNorm) {
  util::Rng rng(1);
  for (int trial = 0; trial < 20; ++trial) {
    linalg::Vector v(10);
    for (double& x : v) x = 3.0 * rng.normal();
    const double radius = 0.5 + rng.uniform();
    const linalg::Vector p = project_l1_ball(v, radius);
    double l1 = 0.0;
    for (double x : p) l1 += std::abs(x);
    if (linalg::norm1(v) > radius) {
      EXPECT_NEAR(l1, radius, 1e-10);
    } else {
      EXPECT_LE(l1, radius + 1e-12);
    }
  }
}

TEST(L1Ball, ProjectionIsClosestPoint) {
  // Compare against a fine soft-threshold search.
  linalg::Vector v{2.0, -1.0, 0.5, 0.1};
  const double radius = 1.0;
  const linalg::Vector p = project_l1_ball(v, radius);
  const double d_opt = [&] {
    double s = 0.0;
    for (std::size_t i = 0; i < v.size(); ++i) {
      s += (p[i] - v[i]) * (p[i] - v[i]);
    }
    return s;
  }();
  util::Rng rng(2);
  for (int trial = 0; trial < 200; ++trial) {
    // Random feasible point.
    linalg::Vector q(4);
    double l1 = 0.0;
    for (double& x : q) {
      x = rng.normal();
      l1 += std::abs(x);
    }
    const double scale = radius * rng.uniform() / (l1 + 1e-12);
    double d = 0.0;
    for (std::size_t i = 0; i < q.size(); ++i) {
      q[i] *= scale;
      d += (q[i] - v[i]) * (q[i] - v[i]);
    }
    EXPECT_GE(d, d_opt - 1e-9);
  }
}

TEST(L1Ball, ZeroRadius) {
  const linalg::Vector p = project_l1_ball({1.0, -2.0}, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(L1Ball, NegativeRadiusThrows) {
  EXPECT_THROW((void)project_l1_ball({1.0}, -1.0), std::invalid_argument);
}

// Small synthetic instance: 4 paths over 5 segments, with one segment shared
// by every path.  Sigma gives each segment independent sensitivity.
struct SmallInstance {
  linalg::Matrix g{
      {1, 1, 0, 0, 1},
      {1, 0, 1, 0, 1},
      {0, 1, 0, 1, 1},
      {0, 0, 1, 1, 1},
  };
  linalg::Matrix sigma;
  linalg::Vector mu{50.0, 60.0, 55.0, 45.0, 120.0};
  SmallInstance() : sigma(5, 8) {
    util::Rng rng(7);
    for (std::size_t i = 0; i < 5; ++i) {
      sigma(i, i) = 4.0 + rng.uniform();          // own parameter
      sigma(i, 5 + i % 3) = 2.0 + rng.uniform();  // shared parameters
    }
  }
};

TEST(GroupSparse, LooseBoundSelectsFewSegments) {
  SmallInstance inst;
  // Bound far above any row's worst case: zero columns suffice only if g
  // rows themselves are within bound; with a huge bound B = 0 is feasible.
  const GroupSparseResult r =
      select_segments(inst.g, inst.sigma, inst.mu, 1e7);
  EXPECT_LT(r.selected_segments.size(), 5u);
  for (double wc : r.row_wc) EXPECT_LE(wc, 1e7 * 1.03);
}

TEST(GroupSparse, TightBoundSelectsAllSegments) {
  SmallInstance inst;
  // Bound so tight only (near-)exact modeling works: B must approach G.
  const GroupSparseResult r =
      select_segments(inst.g, inst.sigma, inst.mu, 1e-3);
  EXPECT_EQ(r.selected_segments.size(), 5u);
  for (double wc : r.row_wc) EXPECT_LE(wc, 1e-3 * 1.03);
}

TEST(GroupSparse, ConstraintsHoldAfterRefit) {
  SmallInstance inst;
  for (double bound : {5.0, 20.0, 100.0}) {
    const GroupSparseResult r =
        select_segments(inst.g, inst.sigma, inst.mu, bound);
    for (double wc : r.row_wc) {
      EXPECT_LE(wc, bound * 1.03) << "bound " << bound;
    }
  }
}

TEST(GroupSparse, SelectionMonotoneInBound) {
  SmallInstance inst;
  std::size_t prev = 100;
  for (double bound : {1.0, 10.0, 50.0, 1000.0, 1e6}) {
    const GroupSparseResult r =
        select_segments(inst.g, inst.sigma, inst.mu, bound);
    EXPECT_LE(r.selected_segments.size(), prev) << "bound " << bound;
    prev = r.selected_segments.size();
  }
}

TEST(GroupSparse, BSupportedOnSelectedColumnsOnly) {
  SmallInstance inst;
  const GroupSparseResult r =
      select_segments(inst.g, inst.sigma, inst.mu, 30.0);
  std::vector<char> sel(5, 0);
  for (int s : r.selected_segments) sel[static_cast<std::size_t>(s)] = 1;
  for (std::size_t i = 0; i < r.b.rows(); ++i) {
    for (std::size_t j = 0; j < r.b.cols(); ++j) {
      if (!sel[j]) EXPECT_DOUBLE_EQ(r.b(i, j), 0.0);
    }
  }
}

TEST(GroupSparse, SharedTrunkSegmentPreferred) {
  // Segment 4 appears in every path; a sparse solution should include it
  // whenever segments are needed at all.
  SmallInstance inst;
  const GroupSparseResult r =
      select_segments(inst.g, inst.sigma, inst.mu, 15.0);
  ASSERT_FALSE(r.selected_segments.empty());
  EXPECT_NE(std::find(r.selected_segments.begin(), r.selected_segments.end(),
                      4),
            r.selected_segments.end());
}

TEST(GroupSparse, ShapeMismatchThrows) {
  SmallInstance inst;
  EXPECT_THROW((void)select_segments(inst.g, linalg::Matrix(4, 8), inst.mu,
                                     10.0),
               std::invalid_argument);
  EXPECT_THROW((void)select_segments(inst.g, inst.sigma, inst.mu, 0.0),
               std::invalid_argument);
}

TEST(GroupSparse, WcSurrogateMatchesDefinition) {
  // For the refit B, row_wc must equal sqrt(c Q c^T) with c = g - b.
  SmallInstance inst;
  const double kappa = 3.0;
  const GroupSparseResult r =
      select_segments(inst.g, inst.sigma, inst.mu, 25.0);
  linalg::Matrix q = linalg::gram(inst.sigma);
  q *= kappa * kappa;
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = 0; j < 5; ++j) q(i, j) += inst.mu[i] * inst.mu[j];
  }
  for (std::size_t i = 0; i < inst.g.rows(); ++i) {
    linalg::Vector c(5);
    for (std::size_t j = 0; j < 5; ++j) c[j] = inst.g(i, j) - r.b(i, j);
    const linalg::Vector qc = linalg::matvec(q, c);
    EXPECT_NEAR(r.row_wc[i], std::sqrt(std::max(linalg::dot(c, qc), 0.0)),
                1e-6 * (1.0 + r.row_wc[i]));
  }
}

}  // namespace
}  // namespace repro::core
