#include "circuit/generator.h"

#include <gtest/gtest.h>

namespace repro::circuit {
namespace {

TEST(Generator, KnownBenchmarksListed) {
  const auto names = known_benchmarks();
  EXPECT_EQ(names.size(), 10u);
  EXPECT_EQ(names.front(), "s1196");
  EXPECT_EQ(names.back(), "s38584");
}

TEST(Generator, UnknownBenchmarkThrows) {
  EXPECT_THROW((void)benchmark_config("s9999"), std::invalid_argument);
}

TEST(Generator, ConfigMatchesPublishedSizes) {
  const GeneratorConfig cfg = benchmark_config("s1423");
  EXPECT_EQ(cfg.num_gates, 657u);
  EXPECT_EQ(cfg.num_inputs, 17u + 74u);
  EXPECT_EQ(cfg.num_outputs, 5u + 74u);
}

TEST(Generator, DeterministicPerName) {
  const Netlist a = generate_benchmark("s1196");
  const Netlist b = generate_benchmark("s1196");
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<GateId>(i);
    EXPECT_EQ(a.gate(id).type, b.gate(id).type);
    EXPECT_EQ(a.gate(id).fanin, b.gate(id).fanin);
  }
}

TEST(Generator, DifferentNamesDiffer) {
  const Netlist a = generate_benchmark("s1196");
  const Netlist b = generate_benchmark("s1488");
  EXPECT_NE(a.size(), b.size());
}

TEST(Generator, ProducesValidNetlist) {
  for (const char* name : {"s1196", "s1423", "s1488"}) {
    const Netlist nl = generate_benchmark(name);
    const auto problems = nl.validate();
    EXPECT_TRUE(problems.empty())
        << name << ": " << (problems.empty() ? "" : problems.front());
  }
}

TEST(Generator, GateCountMatchesConfig) {
  const GeneratorConfig cfg = benchmark_config("s1423");
  const Netlist nl = generate(cfg);
  EXPECT_EQ(nl.combinational_count(), cfg.num_gates);
  EXPECT_EQ(nl.inputs().size(), cfg.num_inputs);
  EXPECT_EQ(nl.outputs().size(), cfg.num_outputs);
}

TEST(Generator, DepthNearTarget) {
  const GeneratorConfig cfg = benchmark_config("s1423");
  const Netlist nl = generate(cfg);
  // Logic depth is at most the level count and should reach most of it.
  EXPECT_LE(nl.depth(), cfg.depth + 1);
  EXPECT_GE(nl.depth(), cfg.depth / 2);
}

TEST(Generator, EveryCombGateReachesACapturePoint) {
  const Netlist nl = generate_benchmark("s1196");
  // Gates with empty fanout must not exist among combinational gates (they
  // are either wired forward or given capture points).
  for (const Gate& g : nl.gates()) {
    if (is_combinational(g.type)) {
      EXPECT_FALSE(g.fanout.empty()) << g.name;
    }
  }
}

TEST(Generator, DegenerateConfigThrows) {
  GeneratorConfig cfg;
  cfg.num_gates = 1;
  cfg.depth = 5;
  EXPECT_THROW((void)generate(cfg), std::invalid_argument);
}

TEST(Generator, CustomSmallConfig) {
  GeneratorConfig cfg;
  cfg.name = "tiny";
  cfg.num_inputs = 4;
  cfg.num_outputs = 3;
  cfg.num_gates = 40;
  cfg.depth = 6;
  cfg.seed = 99;
  const Netlist nl = generate(cfg);
  EXPECT_EQ(nl.combinational_count(), 40u);
  EXPECT_TRUE(nl.validate().empty());
}

TEST(Generator, LargeBenchmarkBuilds) {
  const Netlist nl = generate_benchmark("s38417");
  EXPECT_EQ(nl.combinational_count(), 22179u);
  EXPECT_TRUE(nl.validate().empty());
}

}  // namespace
}  // namespace repro::circuit
