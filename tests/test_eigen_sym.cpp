#include "linalg/eigen_sym.h"

#include <gtest/gtest.h>

#include "linalg/gemm.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_symmetric(std::size_t n, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j <= i; ++j) {
      m(i, j) = m(j, i) = rng.normal();
    }
  }
  return m;
}

TEST(EigenSym, DiagonalMatrix) {
  const EigenSymResult r = eigen_sym(Matrix::diagonal(Vector{3.0, -1.0, 2.0}));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.values[0], -1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 2.0, 1e-12);
  EXPECT_NEAR(r.values[2], 3.0, 1e-12);
}

TEST(EigenSym, Known2x2) {
  Matrix m{{2.0, 1.0}, {1.0, 2.0}};
  const EigenSymResult r = eigen_sym(m);
  EXPECT_NEAR(r.values[0], 1.0, 1e-12);
  EXPECT_NEAR(r.values[1], 3.0, 1e-12);
}

TEST(EigenSym, ValuesAscending) {
  const EigenSymResult r = eigen_sym(random_symmetric(20, 1));
  for (std::size_t i = 1; i < r.values.size(); ++i) {
    EXPECT_LE(r.values[i - 1], r.values[i]);
  }
}

TEST(EigenSym, Reconstruction) {
  const Matrix s = random_symmetric(15, 2);
  const EigenSymResult r = eigen_sym(s);
  ASSERT_TRUE(r.converged);
  // S = V D V^T
  Matrix vd = r.vectors;
  for (std::size_t j = 0; j < r.values.size(); ++j) {
    for (std::size_t i = 0; i < vd.rows(); ++i) vd(i, j) *= r.values[j];
  }
  EXPECT_LT(max_abs_diff(multiply_bt(vd, r.vectors), s), 1e-10);
}

TEST(EigenSym, VectorsOrthonormal) {
  const EigenSymResult r = eigen_sym(random_symmetric(12, 3));
  const Matrix vtv = multiply_at(r.vectors, r.vectors);
  EXPECT_LT(max_abs_diff(vtv, Matrix::identity(12)), 1e-11);
}

TEST(EigenSym, EigenEquationHolds) {
  const Matrix s = random_symmetric(9, 4);
  const EigenSymResult r = eigen_sym(s);
  for (std::size_t j = 0; j < 9; ++j) {
    const Vector v = r.vectors.column(j);
    const Vector sv = matvec(s, v);
    for (std::size_t i = 0; i < 9; ++i) {
      EXPECT_NEAR(sv[i], r.values[j] * v[i], 1e-9);
    }
  }
}

TEST(EigenSym, TraceMatchesEigenSum) {
  const Matrix s = random_symmetric(25, 5);
  const EigenSymResult r = eigen_sym(s);
  double trace = 0.0, sum = 0.0;
  for (std::size_t i = 0; i < 25; ++i) trace += s(i, i);
  for (double v : r.values) sum += v;
  EXPECT_NEAR(trace, sum, 1e-9);
}

TEST(EigenSym, PsdGramHasNonNegativeValues) {
  const Matrix b = random_symmetric(10, 6);
  const EigenSymResult r = eigen_sym(gram(b));
  for (double v : r.values) EXPECT_GT(v, -1e-9);
}

TEST(EigenSym, ValuesOnlyMode) {
  const Matrix s = random_symmetric(8, 7);
  const EigenSymResult full = eigen_sym(s);
  const EigenSymResult vals = eigen_sym(s, /*want_vectors=*/false);
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_NEAR(full.values[i], vals.values[i], 1e-10);
  }
}

TEST(EigenSym, NotSquareThrows) {
  EXPECT_THROW((void)eigen_sym(Matrix(2, 3)), std::invalid_argument);
}

TEST(EigenSym, RepeatedEigenvalues) {
  // Identity has a 3-fold repeated eigenvalue; vectors must still be
  // orthonormal and the reconstruction exact.
  const EigenSymResult r = eigen_sym(Matrix::identity(3));
  for (double v : r.values) EXPECT_NEAR(v, 1.0, 1e-13);
  EXPECT_LT(max_abs_diff(multiply_at(r.vectors, r.vectors),
                         Matrix::identity(3)),
            1e-12);
}

}  // namespace
}  // namespace repro::linalg
