#include "core/predictor.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "circuit/placement.h"
#include "linalg/gemm.h"
#include "test_helpers.h"
#include "timing/segments.h"
#include "util/rng.h"
#include "variation/variation_model.h"

namespace repro::core {
namespace {

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

TEST(Predictor, Figure1ThreePathsPredictTheFourthExactly) {
  // Paper Figure 1: measuring p2, p3, p4 predicts p1 with zero error
  // because d_p1 = d_p2 - d_p3 + d_p4.
  circuit::Netlist nl = test::figure1_netlist();
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const timing::TimingGraph tg(nl, lib);
  auto paths = timing::enumerate_worst_paths(tg, {.max_paths = 10});
  ASSERT_EQ(paths.size(), 4u);
  const auto dec = timing::extract_segments(nl, paths);
  const variation::SpatialModel spatial(3);
  const variation::VariationModel model(tg, spatial, paths, dec, {});

  // Measure paths {1, 2, 3}; predict path 0.
  const LinearPredictor p =
      make_path_predictor(model.a(), model.mu_paths(), {1, 2, 3});
  ASSERT_EQ(p.remaining.size(), 1u);
  const linalg::Vector sig = p.error_sigmas();
  EXPECT_NEAR(sig[0], 0.0, 1e-9);

  // Monte-Carlo check of exactness.
  util::Rng rng(3);
  linalg::Vector x(model.num_params());
  for (int trial = 0; trial < 20; ++trial) {
    for (double& v : x) v = rng.normal();
    const linalg::Vector d = model.path_delays(x);
    const linalg::Vector meas{d[1], d[2], d[3]};
    const linalg::Vector pred = p.predict(meas);
    EXPECT_NEAR(pred[0], d[0], 1e-8);
  }
}

TEST(Predictor, ExactWhenMeasuringSpanningRows) {
  // Rank-3 A: any 3 independent measured rows predict all others exactly.
  const linalg::Matrix a =
      linalg::multiply(random_matrix(12, 3, 1), random_matrix(3, 20, 2));
  linalg::Vector mu(12, 100.0);
  const LinearPredictor p = make_path_predictor(a, mu, {0, 5, 9});
  const linalg::Vector sig = p.error_sigmas();
  for (double s : sig) EXPECT_NEAR(s, 0.0, 1e-7);
}

TEST(Predictor, ErrorSigmaMatchesMonteCarlo) {
  const linalg::Matrix a = random_matrix(8, 15, 3);
  linalg::Vector mu(8, 500.0);
  const LinearPredictor p = make_path_predictor(a, mu, {0, 1, 2});
  const linalg::Vector sig = p.error_sigmas();

  util::Rng rng(4);
  const std::size_t n = 20000;
  std::vector<double> err2(p.remaining.size(), 0.0);
  linalg::Vector x(15);
  for (std::size_t s = 0; s < n; ++s) {
    for (double& v : x) v = rng.normal();
    const linalg::Vector d = linalg::matvec(a, x);
    linalg::Vector meas(3);
    for (int k = 0; k < 3; ++k) {
      meas[static_cast<std::size_t>(k)] =
          mu[static_cast<std::size_t>(k)] + d[static_cast<std::size_t>(k)];
    }
    const linalg::Vector pred = p.predict(meas);
    for (std::size_t i = 0; i < p.remaining.size(); ++i) {
      const double truth =
          mu[static_cast<std::size_t>(p.remaining[i])] +
          d[static_cast<std::size_t>(p.remaining[i])];
      err2[i] += (pred[i] - truth) * (pred[i] - truth);
    }
  }
  for (std::size_t i = 0; i < err2.size(); ++i) {
    const double mc_sigma = std::sqrt(err2[i] / static_cast<double>(n));
    EXPECT_NEAR(mc_sigma, sig[i], 0.05 * sig[i] + 1e-9);
  }
}

TEST(Predictor, OptimalityAgainstPerturbedCoefficients) {
  // The Theorem-2 predictor minimizes MSE: any perturbation of coef must not
  // decrease the analytic error variance.
  const linalg::Matrix a = random_matrix(6, 10, 5);
  linalg::Vector mu(6, 0.0);
  const LinearPredictor p = make_path_predictor(a, mu, {0, 1});
  const linalg::Vector sig = p.error_sigmas();

  util::Rng rng(6);
  const linalg::Matrix a_r = a.select_rows(std::vector<int>{0, 1});
  const linalg::Matrix a_m = a.select_rows(p.remaining);
  for (int trial = 0; trial < 10; ++trial) {
    linalg::Matrix coef2 = p.coef;
    for (std::size_t i = 0; i < coef2.rows(); ++i) {
      for (std::size_t j = 0; j < coef2.cols(); ++j) {
        coef2(i, j) += 0.05 * rng.normal();
      }
    }
    linalg::Matrix omega2 = linalg::multiply(coef2, a_r);
    omega2 -= a_m;
    for (std::size_t i = 0; i < omega2.rows(); ++i) {
      EXPECT_GE(linalg::norm2(omega2.row(i)), sig[i] - 1e-9);
    }
  }
}

TEST(Predictor, PredictSizeMismatchThrows) {
  const linalg::Matrix a = random_matrix(5, 8, 7);
  const LinearPredictor p =
      make_path_predictor(a, linalg::Vector(5, 0.0), {0});
  EXPECT_THROW((void)p.predict(linalg::Vector{1.0, 2.0}),
               std::invalid_argument);
}

TEST(Predictor, JointPredictorMatchesPathOnlyWhenNoSegments) {
  const linalg::Matrix a = random_matrix(7, 12, 8);
  linalg::Vector mu(7, 10.0);
  const LinearPredictor path_only = make_path_predictor(a, mu, {1, 4});
  // Joint with empty segment list over the same remaining set.
  const linalg::Matrix sigma(3, 12);  // unused rows
  const LinearPredictor joint =
      make_joint_predictor(a, mu, sigma, linalg::Vector(3, 0.0), {1, 4}, {},
                           path_only.remaining);
  EXPECT_LT(linalg::max_abs_diff(path_only.coef, joint.coef), 1e-9);
}

TEST(Predictor, SegmentsMeasurementsImprovePrediction) {
  // Knowing segment delays can only reduce (or keep) the analytic error.
  circuit::Netlist nl = test::figure1_netlist();
  circuit::place(nl);
  const circuit::GateLibrary lib;
  const timing::TimingGraph tg(nl, lib);
  auto paths = timing::enumerate_worst_paths(tg, {.max_paths = 10});
  const auto dec = timing::extract_segments(nl, paths);
  const variation::SpatialModel spatial(3);
  const variation::VariationModel model(tg, spatial, paths, dec, {});

  std::vector<int> remaining{0, 1};
  const LinearPredictor with_one_path = make_joint_predictor(
      model.a(), model.mu_paths(), model.sigma(), model.mu_segments(), {2},
      {}, remaining);
  std::vector<int> all_segs;
  for (std::size_t s = 0; s < model.num_segments(); ++s) {
    all_segs.push_back(static_cast<int>(s));
  }
  const LinearPredictor with_segs = make_joint_predictor(
      model.a(), model.mu_paths(), model.sigma(), model.mu_segments(), {2},
      all_segs, remaining);
  const linalg::Vector e1 = with_one_path.error_sigmas();
  const linalg::Vector e2 = with_segs.error_sigmas();
  for (std::size_t i = 0; i < remaining.size(); ++i) {
    EXPECT_LE(e2[i], e1[i] + 1e-9);
  }
  // Measuring *all* segments determines every path exactly.
  for (double s : e2) EXPECT_NEAR(s, 0.0, 1e-8);
}

TEST(Predictor, ParameterMismatchThrows) {
  const linalg::Matrix a = random_matrix(4, 6, 9);
  const linalg::Matrix sigma = random_matrix(3, 7, 10);
  EXPECT_THROW((void)make_joint_predictor(a, linalg::Vector(4, 0.0), sigma,
                                          linalg::Vector(3, 0.0), {0}, {0},
                                          {1, 2, 3}),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
