#include "linalg/matrix.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

namespace repro::linalg {
namespace {

TEST(Vector, DotAndNorms) {
  Vector a{3.0, -4.0};
  Vector b{1.0, 2.0};
  EXPECT_DOUBLE_EQ(dot(a, b), -5.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm1(a), 7.0);
  EXPECT_DOUBLE_EQ(norm_inf(a), 4.0);
}

TEST(Vector, DotSizeMismatchThrows) {
  Vector a{1.0};
  Vector b{1.0, 2.0};
  EXPECT_THROW((void)dot(a, b), std::invalid_argument);
}

TEST(Vector, Norm2AvoidsOverflow) {
  Vector a{1e200, 1e200};
  EXPECT_NEAR(norm2(a), 1e200 * std::sqrt(2.0), 1e188);
}

TEST(Vector, Norm2OfZeros) {
  Vector a{0.0, 0.0, 0.0};
  EXPECT_DOUBLE_EQ(norm2(a), 0.0);
}

TEST(Vector, Axpy) {
  Vector x{1.0, 2.0};
  Vector y{10.0, 20.0};
  axpy(2.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
}

TEST(Matrix, InitializerListAndAccess) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(Matrix, RaggedInitializerThrows) {
  EXPECT_THROW((Matrix{{1.0, 2.0}, {3.0}}), std::invalid_argument);
}

TEST(Matrix, Identity) {
  const Matrix i = Matrix::identity(3);
  for (std::size_t r = 0; r < 3; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      EXPECT_DOUBLE_EQ(i(r, c), r == c ? 1.0 : 0.0);
    }
  }
}

TEST(Matrix, Diagonal) {
  Vector d{2.0, 5.0};
  const Matrix m = Matrix::diagonal(d);
  EXPECT_DOUBLE_EQ(m(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 5.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 0.0);
}

TEST(Matrix, Transposed) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  const Matrix t = m.transposed();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  EXPECT_DOUBLE_EQ(t(2, 1), 6.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(t.transposed(), m), 0.0);
}

TEST(Matrix, TransposedLargeBlocked) {
  Matrix m(70, 45);
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      m(i, j) = static_cast<double>(i * 1000 + j);
    }
  }
  const Matrix t = m.transposed();
  for (std::size_t i = 0; i < m.rows(); ++i) {
    for (std::size_t j = 0; j < m.cols(); ++j) {
      ASSERT_DOUBLE_EQ(t(j, i), m(i, j));
    }
  }
}

TEST(Matrix, SelectRows) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  std::vector<int> idx{2, 0};
  const Matrix s = m.select_rows(idx);
  EXPECT_EQ(s.rows(), 2u);
  EXPECT_DOUBLE_EQ(s(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 2.0);
}

TEST(Matrix, SelectRowsOutOfRangeThrows) {
  Matrix m{{1.0}};
  std::vector<int> idx{1};
  EXPECT_THROW((void)m.select_rows(idx), std::out_of_range);
}

TEST(Matrix, SelectCols) {
  Matrix m{{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  std::vector<int> idx{2, 1};
  const Matrix s = m.select_cols(idx);
  EXPECT_DOUBLE_EQ(s(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(s(1, 1), 5.0);
}

TEST(Matrix, TopRowsLeftCols) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}, {5.0, 6.0}};
  const Matrix t = m.top_rows(2);
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_DOUBLE_EQ(t(1, 1), 4.0);
  const Matrix l = m.left_cols(1);
  EXPECT_EQ(l.cols(), 1u);
  EXPECT_DOUBLE_EQ(l(2, 0), 5.0);
}

TEST(Matrix, SwapRowsAndCols) {
  Matrix m{{1.0, 2.0}, {3.0, 4.0}};
  m.swap_rows(0, 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 3.0);
  m.swap_cols(0, 1);
  EXPECT_DOUBLE_EQ(m(0, 0), 4.0);
}

TEST(Matrix, ColumnRoundTrip) {
  Matrix m(3, 2);
  Vector c{7.0, 8.0, 9.0};
  m.set_column(1, c);
  const Vector got = m.column(1);
  EXPECT_EQ(got, c);
}

TEST(Matrix, ArithmeticOperators) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{1.0, 1.0}, {1.0, 1.0}};
  const Matrix sum = a + b;
  EXPECT_DOUBLE_EQ(sum(1, 1), 5.0);
  const Matrix diff = a - b;
  EXPECT_DOUBLE_EQ(diff(0, 0), 0.0);
  const Matrix scaled = 2.0 * a;
  EXPECT_DOUBLE_EQ(scaled(1, 0), 6.0);
}

TEST(Matrix, ShapeMismatchThrows) {
  Matrix a(2, 2);
  Matrix b(2, 3);
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW((void)max_abs_diff(a, b), std::invalid_argument);
}

TEST(Matrix, FrobeniusAndMaxAbs) {
  Matrix a{{3.0, 0.0}, {0.0, -4.0}};
  EXPECT_DOUBLE_EQ(a.frobenius_norm(), 5.0);
  EXPECT_DOUBLE_EQ(a.max_abs(), 4.0);
}

TEST(Matrix, Matvec) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Vector x{1.0, 1.0};
  const Vector y = matvec(a, x);
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 7.0);
  const Vector yt = matvec_transposed(a, x);
  EXPECT_DOUBLE_EQ(yt[0], 4.0);
  EXPECT_DOUBLE_EQ(yt[1], 6.0);
}

TEST(Matrix, EmptyMatrix) {
  Matrix m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
}

}  // namespace
}  // namespace repro::linalg
