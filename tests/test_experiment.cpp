#include "core/benchmarks.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "linalg/gemm.h"
#include "util/stats.h"

namespace repro::core {
namespace {

ExperimentConfig small_config(const std::string& bench = "s1196") {
  ExperimentConfig cfg;
  cfg.benchmark = bench;
  cfg.max_target_paths = 300;
  cfg.max_candidates = 3000;
  cfg.yield_mc_samples = 300;
  return cfg;
}

TEST(Experiment, BuildsSmallBenchmark) {
  const Experiment e(small_config());
  EXPECT_GT(e.nominal_delay_ps(), 0.0);
  EXPECT_DOUBLE_EQ(e.t_cons_ps(), e.nominal_delay_ps());
  EXPECT_GT(e.target_paths().size(), 10u);
  EXPECT_LE(e.target_paths().size(), 300u);
  EXPECT_GT(e.candidates_enumerated(), e.target_paths().size());
}

TEST(Experiment, AutoHierarchySmallUses21Regions) {
  const Experiment e(small_config());
  EXPECT_EQ(e.total_regions(), 21u);
}

TEST(Experiment, ModelShapesConsistent) {
  const Experiment e(small_config());
  const auto& m = e.model();
  EXPECT_EQ(m.num_paths(), e.target_paths().size());
  EXPECT_EQ(m.num_segments(), e.segments().segments.size());
  EXPECT_EQ(m.num_params(), 2 * e.covered_regions() + e.covered_gates());
  EXPECT_LE(e.covered_gates(), e.total_gates());
  EXPECT_LE(e.covered_regions(), e.total_regions());
}

TEST(Experiment, TargetsSortedByFailProbability) {
  // The first target path must not have lower mean+3sigma criticality than
  // the last one (sorted by yield loss).
  const Experiment e(small_config());
  const auto& m = e.model();
  const double first =
      1.0 - util::normal_cdf((e.t_cons_ps() - m.path_mu(0)) / m.path_sigma(0));
  const std::size_t last_i = m.num_paths() - 1;
  const double last =
      1.0 - util::normal_cdf((e.t_cons_ps() - m.path_mu(last_i)) /
                             m.path_sigma(last_i));
  EXPECT_GE(first, last - 1e-12);
}

TEST(Experiment, TargetsExceedYieldLossThreshold) {
  const Experiment e(small_config());
  const auto& m = e.model();
  const double threshold =
      e.config().yield_loss_factor * (1.0 - e.circuit_yield());
  for (std::size_t p = 0; p < m.num_paths(); ++p) {
    const double q =
        1.0 -
        util::normal_cdf((e.t_cons_ps() - m.path_mu(p)) / m.path_sigma(p));
    EXPECT_GT(q, threshold);
  }
}

TEST(Experiment, DeterministicAcrossRuns) {
  const Experiment a(small_config());
  const Experiment b(small_config());
  EXPECT_EQ(a.target_paths().size(), b.target_paths().size());
  EXPECT_DOUBLE_EQ(a.circuit_yield(), b.circuit_yield());
  EXPECT_LT(linalg::max_abs_diff(a.model().a(), b.model().a()), 0.0 + 1e-15);
}

TEST(Experiment, RelaxedTconsRaisesYieldAndTightensFilter) {
  ExperimentConfig tight = small_config("s1488");
  // A large candidate pool so the yield-loss filter (not the cap) binds.
  tight.max_candidates = 20000;
  tight.max_target_paths = 100000;
  ExperimentConfig relaxed = tight;
  relaxed.tcons_factor = 1.08;
  const Experiment et(tight);
  const Experiment er(relaxed);
  // Relaxing Tcons raises circuit yield.  Under the linear delay model each
  // path's fail probability drops faster than the 0.01*(1-Y) threshold, so
  // fewer candidates qualify.  (The paper's larger Table-2 pools come from
  // re-synthesizing with a relaxed constraint, which changes the netlist —
  // see EXPERIMENTS.md; we model that by raising the extraction cap.)
  EXPECT_GT(er.circuit_yield(), et.circuit_yield());
  EXPECT_LT(er.target_paths().size(), et.target_paths().size());
}

TEST(Experiment, YieldEstimatorSanity) {
  const Experiment e(small_config());
  // Tcons = nominal delay and zero-mean variations: yield must be strictly
  // between 0 and 1 and typically below ~0.6 (max over many paths).
  EXPECT_GT(e.circuit_yield(), 0.0);
  EXPECT_LT(e.circuit_yield(), 1.0);
}

TEST(Experiment, RandomScalePropagates) {
  ExperimentConfig cfg = small_config();
  cfg.random_scale = 3.0;
  const Experiment e3(cfg);
  const Experiment e1(small_config());
  // Same circuit: the 3x model has strictly larger total sensitivity mass.
  EXPECT_GT(e3.model().a().frobenius_norm(),
            e1.model().a().frobenius_norm());
}

TEST(Experiment, DefaultConfigRespectsScaleMode) {
  unsetenv("REPRO_FAST");
  unsetenv("REPRO_FULL");
  const ExperimentConfig def = default_experiment_config("s1423");
  EXPECT_EQ(def.benchmark, "s1423");
  EXPECT_EQ(def.max_target_paths, 2000u);
  setenv("REPRO_FAST", "1", 1);
  EXPECT_LT(default_experiment_config("s1423").max_target_paths, 2000u);
  unsetenv("REPRO_FAST");
}

}  // namespace
}  // namespace repro::core
