#include "linalg/trsm.h"

#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/simd/dispatch.h"
#include "util/rng.h"
#include "util/thread_pool.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// A well-conditioned SPD factor: Cholesky of A A^T + I.
Matrix spd_factor(std::size_t r, std::uint64_t seed) {
  Matrix s = gram(random_matrix(r, r + 3, seed));
  for (std::size_t i = 0; i < r; ++i) s(i, i) += 1.0;
  const CholFactors f = chol_factor(std::move(s));
  EXPECT_TRUE(f.ok);
  return f.l;
}

TEST(Trsm, MatchesPerVectorForwardSolve) {
  const Matrix l = spd_factor(7, 1);
  CholFactors f;
  f.l = l;
  f.ok = true;
  Matrix b = random_matrix(7, 11, 2);
  const Matrix b0 = b;
  trsm_lower_inplace(l, b);
  for (std::size_t c = 0; c < b0.cols(); ++c) {
    const Vector y = chol_forward(f, b0.column(c));
    for (std::size_t i = 0; i < b0.rows(); ++i) {
      // Same substitution recurrence; tight tolerance rather than bit
      // equality because the compiler may contract the two loops
      // differently.
      EXPECT_NEAR(b(i, c), y[i], 1e-13 * (1.0 + std::abs(y[i])));
    }
  }
}

TEST(Trsm, ReconstructsRhs) {
  const Matrix l = spd_factor(9, 3);
  Matrix b = random_matrix(9, 20, 4);
  const Matrix b0 = b;
  trsm_lower_inplace(l, b);
  // L X must reproduce B.  Multiply via the lower triangle only.
  for (std::size_t i = 0; i < b.rows(); ++i) {
    for (std::size_t c = 0; c < b.cols(); ++c) {
      double s = 0.0;
      for (std::size_t k = 0; k <= i; ++k) s += l(i, k) * b(k, c);
      EXPECT_NEAR(s, b0(i, c), 1e-10 * (1.0 + std::abs(b0(i, c))));
    }
  }
}

TEST(Trsm, IgnoresStrictUpperTriangle) {
  Matrix l = spd_factor(5, 5);
  Matrix b = random_matrix(5, 6, 6);
  Matrix b_ref = b;
  trsm_lower_inplace(l, b_ref);
  // Poison the strict upper triangle; the solve must not read it.
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t j = i + 1; j < 5; ++j) l(i, j) = 1e30;
  }
  trsm_lower_inplace(l, b);
  for (std::size_t i = 0; i < 5; ++i) {
    for (std::size_t c = 0; c < 6; ++c) EXPECT_EQ(b(i, c), b_ref(i, c));
  }
}

TEST(Trsm, BitIdenticalAcrossThreadCounts) {
  // Large enough to clear the serial threshold so the pool actually splits.
  const Matrix l = spd_factor(160, 7);
  Matrix b1 = random_matrix(160, 300, 8);
  Matrix b4 = b1;
  const std::size_t saved_threads = util::thread_count();
  util::set_threads(1);
  trsm_lower_inplace(l, b1);
  util::set_threads(4);
  trsm_lower_inplace(l, b4);
  util::set_threads(saved_threads);
  for (std::size_t i = 0; i < b1.rows(); ++i) {
    for (std::size_t c = 0; c < b1.cols(); ++c) {
      EXPECT_EQ(b1(i, c), b4(i, c)) << "at (" << i << ", " << c << ")";
    }
  }
}

TEST(Trsm, InvalidInputsThrow) {
  const Matrix l = spd_factor(4, 9);
  Matrix rect(3, 4);
  Matrix b(4, 2);
  EXPECT_THROW(trsm_lower_inplace(rect, b), std::invalid_argument);
  Matrix b_bad(3, 2);
  EXPECT_THROW(trsm_lower_inplace(l, b_bad), std::invalid_argument);
  Matrix zero_diag = l;
  zero_diag(2, 2) = 0.0;
  EXPECT_THROW(trsm_lower_inplace(zero_diag, b), std::invalid_argument);
}

TEST(Trsm, SolvesCorrectlyUnderEveryDispatchTier) {
  // Residual check per tier: ||L x - b|| stays at solve-roundoff level
  // whichever micro-kernel the slab update routes through.
  const std::string before = simd::tier_name(simd::active_tier());
  const Matrix l = spd_factor(48, 11);
  const Matrix b = random_matrix(48, 24, 12);
  for (simd::Tier t : simd::available_tiers()) {
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    Matrix x = b;
    trsm_lower_inplace(l, x);
    EXPECT_LT(max_abs_diff(multiply(l, x), b), 1e-10) << simd::tier_name(t);
  }
  simd::set_tier(before);
}

TEST(Trsm, EmptyCasesAreNoOps) {
  Matrix l0;
  Matrix b0;
  trsm_lower_inplace(l0, b0);  // 0 x 0 solve: nothing to do
  const Matrix l = spd_factor(3, 10);
  Matrix b(3, 0);
  trsm_lower_inplace(l, b);  // zero right-hand sides
  EXPECT_EQ(b.cols(), 0u);
}

}  // namespace
}  // namespace repro::linalg
