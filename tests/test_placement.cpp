#include "circuit/placement.h"

#include <gtest/gtest.h>

#include <cmath>

#include "circuit/generator.h"

namespace repro::circuit {
namespace {

TEST(Placement, CoordinatesInUnitSquare) {
  Netlist nl = generate_benchmark("s1196");
  place(nl);
  for (const Gate& g : nl.gates()) {
    EXPECT_GE(g.x, 0.0);
    EXPECT_LT(g.x, 1.0);
    EXPECT_GE(g.y, 0.0);
    EXPECT_LT(g.y, 1.0);
  }
}

TEST(Placement, Deterministic) {
  Netlist a = generate_benchmark("s1196");
  Netlist b = generate_benchmark("s1196");
  place(a);
  place(b);
  for (std::size_t i = 0; i < a.size(); ++i) {
    const auto id = static_cast<GateId>(i);
    EXPECT_DOUBLE_EQ(a.gate(id).x, b.gate(id).x);
    EXPECT_DOUBLE_EQ(a.gate(id).y, b.gate(id).y);
  }
}

TEST(Placement, XFollowsTopologicalLevel) {
  Netlist nl = generate_benchmark("s1196");
  place(nl);
  // Every edge goes (roughly) left to right: driver.x <= sink.x + jitter.
  for (const Gate& g : nl.gates()) {
    for (GateId d : g.fanin) {
      EXPECT_LE(nl.gate(d).x, g.x + 0.1);
    }
  }
}

TEST(Placement, ConnectedGatesAreCloserThanRandomPairs) {
  Netlist nl = generate_benchmark("s1423");
  place(nl);
  double edge_dist = 0.0;
  std::size_t edges = 0;
  for (const Gate& g : nl.gates()) {
    for (GateId d : g.fanin) {
      const Gate& gd = nl.gate(d);
      edge_dist += std::hypot(g.x - gd.x, g.y - gd.y);
      ++edges;
    }
  }
  edge_dist /= static_cast<double>(edges);
  // Average distance between uniformly random points in the unit square is
  // ~0.52; a locality-aware placement should be far below that.
  EXPECT_LT(edge_dist, 0.30);
}

TEST(Placement, EmptyNetlistIsNoop) {
  Netlist nl("empty");
  EXPECT_NO_THROW(place(nl));
}

TEST(Placement, JitterConfigurable) {
  Netlist a = generate_benchmark("s1196");
  PlacementOptions opt;
  opt.jitter = 0.0;
  place(a, opt);
  // With zero jitter, x is exactly level / max_level for gates at level 0.
  for (GateId id : a.inputs()) {
    EXPECT_DOUBLE_EQ(a.gate(id).x, 0.0);
  }
}

}  // namespace
}  // namespace repro::circuit
