#include "core/baseline_rcp.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <memory>

#include "circuit/generator.h"
#include "circuit/placement.h"
#include "core/benchmarks.h"
#include "core/path_selection.h"
#include "core/predictor.h"
#include "timing/segments.h"
#include "util/rng.h"
#include "util/stats.h"

namespace repro::core {
namespace {

struct Fixture {
  circuit::Netlist nl;
  circuit::GateLibrary lib;
  std::unique_ptr<timing::TimingGraph> tg;
  std::vector<timing::Path> paths;
  timing::SegmentDecomposition dec;
  std::unique_ptr<variation::SpatialModel> spatial;
  std::unique_ptr<variation::VariationModel> model;
  timing::SstaResult ssta;

  Fixture() : nl(circuit::generate_benchmark("s1196")) {
    circuit::place(nl);
    tg = std::make_unique<timing::TimingGraph>(nl, lib);
    paths = timing::enumerate_worst_paths(*tg, {.max_paths = 150});
    dec = timing::extract_segments(nl, paths);
    spatial = std::make_unique<variation::SpatialModel>(3);
    model = std::make_unique<variation::VariationModel>(
        *tg, *spatial, paths, dec, variation::VariationOptions{});
    ssta = timing::run_ssta(*tg, *spatial);
  }
};

TEST(BaselineRcp, PicksHighlyCorrelatedPath) {
  Fixture f;
  const RcpResult r =
      select_representative_critical_path(*f.model, *f.spatial, f.ssta);
  ASSERT_GE(r.path_index, 0);
  // The pool is statistically critical; its best member should correlate
  // strongly with the chip delay.
  EXPECT_GT(r.correlation, 0.7);
  EXPECT_LE(r.correlation, 1.0 + 1e-9);
  // And it is the argmax of the reported per-path correlations.
  for (double c : r.all_correlations) {
    EXPECT_LE(c, r.correlation + 1e-12);
  }
}

TEST(BaselineRcp, ChipDelayRegressionValidatedByMonteCarlo) {
  Fixture f;
  const RcpResult r =
      select_representative_critical_path(*f.model, *f.spatial, f.ssta);
  // Sample silicon: compare the RCP linear predictor against the sampled
  // chip delay (max over target paths, a lower bound of the true circuit
  // delay that the pool approximates).
  util::Rng rng(3);
  linalg::Vector x(f.model->num_params());
  util::RunningStats err;
  std::vector<double> pred, truth;
  for (int s = 0; s < 400; ++s) {
    for (double& v : x) v = rng.normal();
    const linalg::Vector d = f.model->path_delays(x);
    double chip = 0.0;
    for (double v : d) chip = std::max(chip, v);
    const double p =
        r.slope * d[static_cast<std::size_t>(r.path_index)] + r.intercept;
    pred.push_back(p);
    truth.push_back(chip);
    err.add(std::abs(p - chip) / chip);
  }
  // Strong linear relationship and single-digit relative error on average.
  EXPECT_GT(util::correlation(pred, truth), 0.6);
  EXPECT_LT(err.mean(), 0.05);
}

TEST(BaselineRcp, CannotLocalizeIndividualPaths) {
  // The paper's critique: one RCP measurement predicts the chip delay but
  // not individual paths.  Predicting every path from the single RCP
  // measurement must be far worse than the framework's |Pr| measurements.
  Fixture f;
  const RcpResult r =
      select_representative_critical_path(*f.model, *f.spatial, f.ssta);
  const LinearPredictor single = make_path_predictor(
      f.model->a(), f.model->mu_paths(), {r.path_index});
  const linalg::Vector sig = single.error_sigmas();
  double worst = 0.0;
  for (double s : sig) worst = std::max(worst, s);
  // Compare with a proper representative set of modest size.
  PathSelectionOptions opt;
  opt.epsilon = 0.05;
  double t_cons = 0.0;
  for (double mu : f.model->mu_paths()) t_cons = std::max(t_cons, mu);
  const PathSelectionResult sel =
      select_representative_paths(f.model->a(), t_cons, opt);
  EXPECT_GT(3.0 * worst / t_cons, opt.epsilon);  // single path misses eps
  EXPECT_LE(sel.eps_r, opt.epsilon);             // the framework meets it
}

TEST(BaselineRcp, EmptyModelThrows) {
  Fixture f;
  const variation::VariationModel empty(*f.tg, *f.spatial, {},
                                        timing::SegmentDecomposition{},
                                        variation::VariationOptions{});
  EXPECT_THROW((void)select_representative_critical_path(empty, *f.spatial,
                                                         f.ssta),
               std::invalid_argument);
}

}  // namespace
}  // namespace repro::core
