#include "circuit/bench_io.h"

#include <gtest/gtest.h>

namespace repro::circuit {
namespace {

const char* kSmallBench = R"(# small test circuit
INPUT(G0)
INPUT(G1)
OUTPUT(G5)
G3 = NAND(G0, G1)
G4 = NOT(G3)
G5 = OR(G4, G0)
)";

const char* kDffBench = R"(INPUT(a)
OUTPUT(y)
q = DFF(d)
d = NAND(a, q)
y = NOT(q)
)";

TEST(BenchIo, ParsesGatesAndDeclarations) {
  const Netlist nl = read_bench_string(kSmallBench, "small");
  EXPECT_EQ(nl.name(), "small");
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 1u);
  EXPECT_EQ(nl.combinational_count(), 3u);
  ASSERT_TRUE(nl.find("G3").has_value());
  EXPECT_EQ(nl.gate(*nl.find("G3")).type, GateType::kNand);
  EXPECT_EQ(nl.gate(*nl.find("G3")).fanin.size(), 2u);
}

TEST(BenchIo, PoCaptureGateWiredToDeclaredSignal) {
  const Netlist nl = read_bench_string(kSmallBench);
  const auto po = nl.outputs().front();
  const auto driver = nl.gate(po).fanin.front();
  EXPECT_EQ(nl.gate(driver).name, "G5");
}

TEST(BenchIo, DffSplitIntoLaunchAndCapture) {
  const Netlist nl = read_bench_string(kDffBench);
  // q becomes a launch point; q$d becomes a capture point fed by d.
  ASSERT_TRUE(nl.find("q").has_value());
  EXPECT_EQ(nl.gate(*nl.find("q")).type, GateType::kInput);
  ASSERT_TRUE(nl.find("q$d").has_value());
  const Gate& cap = nl.gate(*nl.find("q$d"));
  EXPECT_EQ(cap.type, GateType::kOutput);
  EXPECT_EQ(nl.gate(cap.fanin.front()).name, "d");
  // Two launch points (a, q), two capture points (y$po, q$d).
  EXPECT_EQ(nl.inputs().size(), 2u);
  EXPECT_EQ(nl.outputs().size(), 2u);
}

TEST(BenchIo, DffBreaksCombinationalCycle) {
  // d depends on q, q = DFF(d): after splitting this must be acyclic.
  const Netlist nl = read_bench_string(kDffBench);
  EXPECT_NO_THROW((void)nl.topological_order());
  EXPECT_TRUE(nl.validate().empty());
}

TEST(BenchIo, CommentsAndBlanksIgnored) {
  const Netlist nl = read_bench_string(
      "# header\n\n  \nINPUT(x)\nOUTPUT(x)\n# trailing\n");
  EXPECT_EQ(nl.inputs().size(), 1u);
  EXPECT_EQ(nl.outputs().size(), 1u);
}

TEST(BenchIo, UndefinedSignalThrows) {
  EXPECT_THROW((void)read_bench_string("INPUT(a)\ng = NOT(missing)\n"),
               std::runtime_error);
}

TEST(BenchIo, MalformedLineThrows) {
  EXPECT_THROW((void)read_bench_string("INPUT a\n"), std::runtime_error);
  EXPECT_THROW((void)read_bench_string("g = NOT(a, b)\nINPUT(a)\nINPUT(b)\n"),
               std::runtime_error);
  EXPECT_THROW((void)read_bench_string("g = FROB(a)\nINPUT(a)\n"),
               std::runtime_error);
  EXPECT_THROW((void)read_bench_string("q = DFF(a, b)\nINPUT(a)\nINPUT(b)\n"),
               std::runtime_error);
}

TEST(BenchIo, RoundTripPreservesStructure) {
  const Netlist nl = read_bench_string(kSmallBench);
  const std::string text = write_bench_string(nl);
  const Netlist nl2 = read_bench_string(text);
  EXPECT_EQ(nl2.size(), nl.size());
  EXPECT_EQ(nl2.inputs().size(), nl.inputs().size());
  EXPECT_EQ(nl2.outputs().size(), nl.outputs().size());
  EXPECT_EQ(nl2.combinational_count(), nl.combinational_count());
  EXPECT_EQ(nl2.depth(), nl.depth());
  EXPECT_TRUE(nl2.validate().empty());
}

TEST(BenchIo, MissingFileThrows) {
  EXPECT_THROW((void)read_bench_file("/nonexistent/file.bench"),
               std::runtime_error);
}

// The real ISCAS'89 s27 netlist (4 PI, 1 PO, 3 DFF, 10 gates): a
// ground-truth structural check against published properties.
const char* kS27 = R"(INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NAND(G2, G12)
)";

TEST(BenchIo, S27StructureMatchesPublished) {
  const Netlist nl = read_bench_string(kS27, "s27");
  EXPECT_TRUE(nl.validate().empty());
  EXPECT_EQ(nl.combinational_count(), 10u);       // 10 logic gates
  EXPECT_EQ(nl.inputs().size(), 4u + 3u);         // PIs + DFF outputs
  EXPECT_EQ(nl.outputs().size(), 1u + 3u);        // PO + DFF inputs
  // G11 fans out to G17, G10 and the DFF G6: three sinks.
  EXPECT_EQ(nl.gate(*nl.find("G11")).fanout.size(), 3u);
}

TEST(BenchIo, S27RoundTrip) {
  const Netlist nl = read_bench_string(kS27, "s27");
  const Netlist nl2 = read_bench_string(write_bench_string(nl), "s27rt");
  EXPECT_EQ(nl2.size(), nl.size());
  EXPECT_EQ(nl2.combinational_count(), nl.combinational_count());
  EXPECT_EQ(nl2.depth(), nl.depth());
  EXPECT_TRUE(nl2.validate().empty());
}

TEST(BenchIo, MultiFanoutSignal) {
  // G0 feeds two gates; fanout list must have both.
  const Netlist nl = read_bench_string(kSmallBench);
  const Gate& g0 = nl.gate(*nl.find("G0"));
  EXPECT_EQ(g0.fanout.size(), 2u);
}

// --- Recoverable parsing -----------------------------------------------------

TEST(BenchIoRecover, CleanInputHasNoDiagnostics) {
  const BenchParseResult res = parse_bench_string(kSmallBench, "small");
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.netlist.inputs().size(), 2u);
  EXPECT_EQ(res.netlist.combinational_count(), 3u);
}

TEST(BenchIoRecover, TruncatedFileKeepsValidPrefix) {
  // A download cut off mid-line: the broken tail becomes diagnostics, the
  // valid prefix still builds a netlist.
  const BenchParseResult res = parse_bench_string(
      "INPUT(G0)\nINPUT(G1)\nG3 = NAND(G0, G1)\nG4 = NO", "trunc");
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics.front().line, 4);
  EXPECT_TRUE(res.netlist.find("G3").has_value());
  EXPECT_EQ(res.netlist.inputs().size(), 2u);
}

TEST(BenchIoRecover, GarbageLinesReportedWithLineNumbers) {
  const BenchParseResult res = parse_bench_string(
      "INPUT(G0)\n"          // 1: ok
      "not bench at all\n"   // 2: malformed
      "g1 = FROB(G0)\n"      // 3: unknown function
      "g2 = NOT(G0)\n"       // 4: ok
      "g3 = NOT(nope)\n",    // 5: undefined signal
      "garbage");
  ASSERT_EQ(res.diagnostics.size(), 3u);
  EXPECT_EQ(res.diagnostics[0].line, 2);
  EXPECT_EQ(res.diagnostics[1].line, 3);
  EXPECT_NE(res.diagnostics[1].message.find("FROB"), std::string::npos);
  EXPECT_EQ(res.diagnostics[2].line, 5);
  EXPECT_NE(res.diagnostics[2].message.find("nope"), std::string::npos);
  // The good gate survives.
  ASSERT_TRUE(res.netlist.find("g2").has_value());
  EXPECT_EQ(res.netlist.gate(*res.netlist.find("g2")).type, GateType::kNot);
}

TEST(BenchIoRecover, DuplicateSignalKeepsFirstDefinition) {
  const BenchParseResult res = parse_bench_string(
      "INPUT(a)\nINPUT(b)\ng = NOT(a)\ng = NAND(a, b)\n", "dup");
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics.front().line, 4);
  EXPECT_NE(res.diagnostics.front().message.find("duplicate"),
            std::string::npos);
  EXPECT_EQ(res.netlist.gate(*res.netlist.find("g")).type, GateType::kNot);
}

TEST(BenchIoRecover, DuplicateOutputDeclarationReported) {
  const BenchParseResult res = parse_bench_string(
      "INPUT(a)\nOUTPUT(a)\nOUTPUT(a)\n", "dupout");
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics.front().line, 3);
  EXPECT_EQ(res.netlist.outputs().size(), 1u);
}

TEST(BenchIoRecover, UndefinedFaninSkipsOnlyThatConnection) {
  const BenchParseResult res = parse_bench_string(
      "INPUT(a)\ng = AND(a, ghost)\nOUTPUT(g)\n", "ghost");
  ASSERT_EQ(res.diagnostics.size(), 1u);
  EXPECT_EQ(res.diagnostics.front().line, 2);
  // g exists with the resolvable fanin wired.
  const Gate& g = res.netlist.gate(*res.netlist.find("g"));
  EXPECT_EQ(g.fanin.size(), 1u);
  EXPECT_EQ(res.netlist.outputs().size(), 1u);
}

TEST(BenchIoRecover, EmptyInputYieldsEmptyCleanNetlist) {
  const BenchParseResult res = parse_bench_string("", "empty");
  EXPECT_TRUE(res.ok());
  EXPECT_EQ(res.netlist.size(), 0u);
}

TEST(BenchIoRecover, ThrowingWrapperReportsFirstDiagnosticLine) {
  try {
    (void)read_bench_string("INPUT(a)\nbogus line\n");
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("bench line 2"), std::string::npos);
  }
}

}  // namespace
}  // namespace repro::circuit
