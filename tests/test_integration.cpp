// End-to-end integration: the full Table-1 / Table-2 pipelines on a small
// benchmark, checking the paper's qualitative claims hold on our substrate.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/benchmarks.h"
#include "core/effective_rank.h"
#include "core/guardband.h"
#include "core/hybrid_selection.h"
#include "core/monte_carlo.h"
#include "core/path_selection.h"
#include "linalg/gemm.h"
#include "linalg/svd.h"

namespace repro::core {
namespace {

ExperimentConfig cfg(const std::string& bench, std::size_t paths = 250) {
  ExperimentConfig c;
  c.benchmark = bench;
  c.max_target_paths = paths;
  c.max_candidates = 4000;
  c.yield_mc_samples = 300;
  return c;
}

TEST(Integration, Table1PipelineSmall) {
  const Experiment e(cfg("s1196"));
  const auto& a = e.model().a();

  // Exact selection.
  const SubsetSelector selector(a);
  const std::size_t rank = selector.rank();
  EXPECT_GT(rank, 0u);
  EXPECT_LT(rank, e.target_paths().size());  // shared segments -> low rank

  // Approximate selection at eps = 5%.
  PathSelectionOptions psel;
  psel.epsilon = 0.05;
  const linalg::Matrix w = linalg::gram(a);
  const PathSelectionResult sel =
      select_representative_paths(selector, w, e.t_cons_ps(), psel);
  EXPECT_LT(sel.representatives.size(), rank);
  EXPECT_LE(sel.eps_r, 0.05);

  // Monte-Carlo validation: observed errors below the analytic guard-band.
  const LinearPredictor pred = make_path_predictor(a, e.model().mu_paths(),
                                                   sel.representatives);
  McOptions mc;
  mc.samples = 1500;
  const McMetrics m = evaluate_predictor(e.model(), pred, mc);
  EXPECT_LT(m.e1, psel.epsilon);        // e1 below tolerance (Sec 6.3)
  EXPECT_LT(m.e2, m.e1);
  // The analytic band uses kappa=3 against Tcons; observed maxima over 1500
  // samples x hundreds of paths divide by the (smaller) true delay and the
  // extreme can reach ~4 sigma, so allow 1.8x slack on the band.
  EXPECT_LE(m.worst_eps, sel.eps_r * 1.8 + 0.01);
}

TEST(Integration, EffectiveRankFarBelowRank) {
  const Experiment e(cfg("s1423", 400));
  const linalg::SvdResult f = linalg::svd(e.model().a(), false);
  const std::size_t rank =
      linalg::svd_rank(f, e.model().a().rows(), e.model().a().cols());
  const std::size_t eff = effective_rank(f.s, 0.05);
  // Paper Figure 2(a): the effective rank is a small fraction of rank(A)
  // (~30 of 122 for their S1423 pool).
  EXPECT_LT(eff, rank / 2);
  EXPECT_LT(eff, 120u);
}

TEST(Integration, Table2PipelineHybridBeatsPathOnly) {
  ExperimentConfig c = cfg("s1196", 300);  // Table-2-style larger pool
  const Experiment e(c);
  const auto& m = e.model();

  PathSelectionOptions psel;
  psel.epsilon = 0.08;
  const PathSelectionResult path_sel =
      select_representative_paths(m.a(), e.t_cons_ps(), psel);

  HybridOptions hopt;
  hopt.epsilon = 0.08;
  const HybridResult hybrid = sweep_hybrid_selection(
      m.a(), m.mu_paths(), m.g(), m.sigma(), m.mu_segments(), e.t_cons_ps(),
      {0.03, 0.05}, hopt);

  // Both meet the tolerance analytically.
  EXPECT_LE(path_sel.eps_r, 0.08);
  EXPECT_LE(hybrid.eps_achieved, 0.08 * 1.05);
  // Hybrid total measurements below exact rank (the paper's headline).
  EXPECT_LT(hybrid.rep_paths.size() + hybrid.rep_segments.size(),
            hybrid.exact_rank);

  // MC-validate the hybrid predictor.
  McOptions mc;
  mc.samples = 1000;
  const McMetrics mm = evaluate_predictor(e.model(), hybrid.predictor, mc);
  EXPECT_LT(mm.e1, 0.08);
}

TEST(Integration, GuardbandDetectionEndToEnd) {
  ExperimentConfig c = cfg("s1196", 200);
  c.tcons_factor = 1.02;
  const Experiment e(c);
  PathSelectionOptions psel;
  psel.epsilon = 0.05;
  const PathSelectionResult sel =
      select_representative_paths(e.model().a(), e.t_cons_ps(), psel);
  const LinearPredictor pred = make_path_predictor(
      e.model().a(), e.model().mu_paths(), sel.representatives);
  McOptions mc;
  mc.samples = 1000;
  const GuardbandReport rep =
      guardband_analysis(e.model(), pred, sel.errors.per_path_eps,
                         e.t_cons_ps(), psel.epsilon, mc);
  EXPECT_LE(rep.missed, rep.observations / 10000 + 1);
  EXPECT_LE(rep.avg_guardband, psel.epsilon);
}

TEST(Integration, Figure2TrendRandomScaleSlowsDecay) {
  // Fig 2(b): scaling random sensitivities 3x flattens the singular-value
  // decay, i.e. raises the effective rank.
  ExperimentConfig base = cfg("s1196", 250);
  ExperimentConfig scaled = base;
  scaled.random_scale = 3.0;
  const Experiment e1(base);
  const Experiment e3(scaled);
  const linalg::SvdResult f1 = linalg::svd(e1.model().a(), false);
  const linalg::SvdResult f3 = linalg::svd(e3.model().a(), false);
  EXPECT_GT(effective_rank(f3.s, 0.05), effective_rank(f1.s, 0.05));
}

}  // namespace
}  // namespace repro::core
