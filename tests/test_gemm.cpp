#include "linalg/gemm.h"

#include <gtest/gtest.h>

#include "linalg/simd/dispatch.h"
#include "util/rng.h"

namespace repro::linalg {
namespace {

Matrix random_matrix(std::size_t r, std::size_t c, std::uint64_t seed) {
  util::Rng rng(seed);
  Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

Matrix naive_multiply(const Matrix& a, const Matrix& b) {
  Matrix c(a.rows(), b.cols());
  for (std::size_t i = 0; i < a.rows(); ++i) {
    for (std::size_t j = 0; j < b.cols(); ++j) {
      double s = 0.0;
      for (std::size_t k = 0; k < a.cols(); ++k) s += a(i, k) * b(k, j);
      c(i, j) = s;
    }
  }
  return c;
}

TEST(Gemm, SmallKnownProduct) {
  Matrix a{{1.0, 2.0}, {3.0, 4.0}};
  Matrix b{{5.0, 6.0}, {7.0, 8.0}};
  const Matrix c = multiply(a, b);
  EXPECT_DOUBLE_EQ(c(0, 0), 19.0);
  EXPECT_DOUBLE_EQ(c(0, 1), 22.0);
  EXPECT_DOUBLE_EQ(c(1, 0), 43.0);
  EXPECT_DOUBLE_EQ(c(1, 1), 50.0);
}

TEST(Gemm, ShapeMismatchThrows) {
  Matrix a(2, 3);
  Matrix b(2, 3);
  EXPECT_THROW((void)multiply(a, b), std::invalid_argument);
  EXPECT_THROW((void)multiply_at(a, Matrix(3, 2)), std::invalid_argument);
  EXPECT_THROW((void)multiply_bt(a, Matrix(3, 2)), std::invalid_argument);
}

TEST(Gemm, MatchesNaiveOnRandom) {
  const Matrix a = random_matrix(17, 23, 1);
  const Matrix b = random_matrix(23, 11, 2);
  EXPECT_LT(max_abs_diff(multiply(a, b), naive_multiply(a, b)), 1e-12);
}

TEST(Gemm, MultiplyBtMatchesExplicitTranspose) {
  const Matrix a = random_matrix(9, 14, 3);
  const Matrix b = random_matrix(6, 14, 4);
  EXPECT_LT(max_abs_diff(multiply_bt(a, b), multiply(a, b.transposed())),
            1e-12);
}

TEST(Gemm, MultiplyAtMatchesExplicitTranspose) {
  const Matrix a = random_matrix(12, 7, 5);
  const Matrix b = random_matrix(12, 9, 6);
  EXPECT_LT(max_abs_diff(multiply_at(a, b), multiply(a.transposed(), b)),
            1e-12);
}

TEST(Gemm, GramIsSymmetricAndCorrect) {
  const Matrix a = random_matrix(8, 20, 7);
  const Matrix w = gram(a);
  EXPECT_LT(max_abs_diff(w, multiply_bt(a, a)), 1e-12);
  EXPECT_LT(max_abs_diff(w, w.transposed()), 0.0 + 1e-15);
}

TEST(Gemm, GramTMatchesAtA) {
  const Matrix a = random_matrix(15, 6, 8);
  EXPECT_LT(max_abs_diff(gram_t(a), multiply_at(a, a)), 1e-12);
}

TEST(Gemm, LargeThreadedPathMatchesNaive) {
  // Big enough to trigger the threaded path in parallel_rows.
  const Matrix a = random_matrix(120, 300, 9);
  const Matrix b = random_matrix(300, 90, 10);
  EXPECT_LT(max_abs_diff(multiply(a, b), naive_multiply(a, b)), 1e-10);
}

TEST(Gemm, ThreadCountConfigurable) {
  const std::size_t before = gemm_threads();
  set_gemm_threads(2);
  EXPECT_EQ(gemm_threads(), 2u);
  const Matrix a = random_matrix(64, 64, 11);
  const Matrix b = random_matrix(64, 64, 12);
  EXPECT_LT(max_abs_diff(multiply(a, b), naive_multiply(a, b)), 1e-11);
  set_gemm_threads(before);
}

TEST(Gemm, CorrectUnderEveryDispatchTier) {
  // The cross-tier agreement bound lives in test_simd_kernels; this is the
  // in-place sanity sweep: every tier the host offers must track the naive
  // triple loop on a packed-path-sized product.
  const std::string before = simd::tier_name(simd::active_tier());
  const Matrix a = random_matrix(70, 90, 14);
  const Matrix b = random_matrix(90, 66, 15);
  const Matrix ref = naive_multiply(a, b);
  for (simd::Tier t : simd::available_tiers()) {
    ASSERT_TRUE(simd::set_tier(simd::tier_name(t)));
    EXPECT_LT(max_abs_diff(multiply(a, b), ref), 1e-10) << simd::tier_name(t);
  }
  simd::set_tier(before);
}

TEST(Gemm, IdentityIsNeutral) {
  const Matrix a = random_matrix(10, 10, 13);
  EXPECT_LT(max_abs_diff(multiply(a, Matrix::identity(10)), a), 1e-15);
  EXPECT_LT(max_abs_diff(multiply(Matrix::identity(10), a), a), 1e-15);
}

}  // namespace
}  // namespace repro::linalg
