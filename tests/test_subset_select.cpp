#include "core/subset_select.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "core/error_model.h"
#include "linalg/cholesky.h"
#include "linalg/gemm.h"
#include "linalg/solve.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace repro::core {
namespace {

std::uint64_t counter_value(const char* name) {
  for (const auto& c : util::telemetry::snapshot().counters) {
    if (c.name == name) return c.value;
  }
  return 0;
}

linalg::Matrix random_matrix(std::size_t r, std::size_t c,
                             std::uint64_t seed) {
  util::Rng rng(seed);
  linalg::Matrix m(r, c);
  for (std::size_t i = 0; i < r; ++i) {
    for (std::size_t j = 0; j < c; ++j) m(i, j) = rng.normal();
  }
  return m;
}

// Low-rank matrix with known rank.
linalg::Matrix low_rank(std::size_t r, std::size_t c, std::size_t rank,
                        std::uint64_t seed) {
  return linalg::multiply(random_matrix(r, rank, seed),
                          random_matrix(rank, c, seed + 1));
}

TEST(SubsetSelect, RankMatchesSvd) {
  const linalg::Matrix a = low_rank(30, 20, 7, 1);
  const SubsetSelector sel(a);
  EXPECT_EQ(sel.rank(), 7u);
  EXPECT_EQ(sel.rank(), linalg::rank(a));
}

TEST(SubsetSelect, SelectedIndicesValidAndDistinct) {
  const linalg::Matrix a = random_matrix(25, 10, 2);
  const SubsetSelector sel(a);
  for (std::size_t r = 1; r <= sel.rank(); ++r) {
    const auto idx = sel.select(r);
    EXPECT_EQ(idx.size(), r);
    std::set<int> uniq(idx.begin(), idx.end());
    EXPECT_EQ(uniq.size(), r);
    for (int i : idx) {
      EXPECT_GE(i, 0);
      EXPECT_LT(i, 25);
    }
  }
}

TEST(SubsetSelect, BadRThrows) {
  const SubsetSelector sel(random_matrix(10, 5, 3));
  EXPECT_THROW((void)sel.select(0), std::invalid_argument);
  EXPECT_THROW((void)sel.select(6), std::invalid_argument);
}

TEST(SubsetSelect, ExactSelectionSpansRowSpace) {
  // Theorem 1: r = rank(A) selected rows let every other row be written as
  // their linear combination.
  const linalg::Matrix a = low_rank(40, 25, 6, 4);
  const SubsetSelector sel(a);
  ASSERT_EQ(sel.rank(), 6u);
  const auto rep = sel.select(6);
  const linalg::Matrix a_r = a.select_rows(rep);
  // For each row i: residual of projecting onto span(rows of A_r) must be 0.
  const linalg::Matrix p = linalg::pseudo_inverse(a_r);
  for (std::size_t i = 0; i < a.rows(); ++i) {
    const linalg::Vector coeffs =
        linalg::matvec(p.transposed(), a.row(i));  // (A_r^T)^+ a_i
    const linalg::Vector recon = linalg::matvec_transposed(a_r, coeffs);
    for (std::size_t j = 0; j < a.cols(); ++j) {
      EXPECT_NEAR(recon[j], a(i, j), 1e-8);
    }
  }
}

TEST(SubsetSelect, SelectedRowsAreIndependent) {
  const linalg::Matrix a = random_matrix(30, 12, 5);
  const SubsetSelector sel(a);
  const auto rep = sel.select(sel.rank());
  EXPECT_EQ(linalg::rank(a.select_rows(rep)), sel.rank());
}

TEST(SubsetSelect, PivotOrderPrefersDominantRows) {
  // One row has a huge norm along the dominant direction; it must be the
  // first pivot.
  linalg::Matrix a = random_matrix(12, 6, 6);
  for (std::size_t j = 0; j < 6; ++j) a(4, j) *= 50.0;
  const SubsetSelector sel(a);
  const auto rep = sel.select(3);
  EXPECT_EQ(rep.front(), 4);
}

TEST(SubsetSelect, DuplicatedRowsNotBothSelected) {
  linalg::Matrix a = random_matrix(10, 8, 7);
  a.set_row(3, a.row(2));  // duplicate rows 2 and 3
  const SubsetSelector sel(a);
  const auto rep = sel.select(5);
  const bool has2 = std::count(rep.begin(), rep.end(), 2) > 0;
  const bool has3 = std::count(rep.begin(), rep.end(), 3) > 0;
  EXPECT_FALSE(has2 && has3);
}

TEST(SubsetSelect, GramRouteMatchesSvdRank) {
  const linalg::Matrix a = low_rank(40, 30, 8, 21);
  const linalg::Matrix w = linalg::gram(a);
  const SubsetSelector direct(a);
  const SubsetSelector via_gram(a, w);
  EXPECT_EQ(via_gram.rank(), direct.rank());
  // Singular values agree to Gram precision.
  for (std::size_t k = 0; k < direct.rank(); ++k) {
    EXPECT_NEAR(via_gram.singular_values()[k], direct.singular_values()[k],
                1e-6 * (1.0 + direct.singular_values()[0]));
  }
}

TEST(SubsetSelect, GramRouteSelectionSpansSameError) {
  // The two routes may pick different rows (sign/order freedom in U), but
  // the induced prediction error must match at every r.
  const linalg::Matrix a = low_rank(35, 25, 6, 23);
  const linalg::Matrix w = linalg::gram(a);
  const SubsetSelector direct(a);
  const SubsetSelector via_gram(a, w);
  for (std::size_t r : {2u, 4u, 6u}) {
    const auto sel_d = direct.select(r);
    const auto sel_g = via_gram.select(r);
    const auto err_d = selection_errors_from_gram(w, sel_d, 1000.0, 3.0);
    const auto err_g = selection_errors_from_gram(w, sel_g, 1000.0, 3.0);
    EXPECT_NEAR(err_d.eps_r, err_g.eps_r, 0.3 * (err_d.eps_r + 1e-6) + 1e-9);
  }
}

TEST(SubsetSelect, GreedySelectValidAndDistinct) {
  const linalg::Matrix a = random_matrix(30, 18, 25);
  const SubsetSelector sel(a, linalg::gram(a));
  const auto rep = sel.select_greedy(10);
  EXPECT_EQ(rep.size(), 10u);
  std::set<int> uniq(rep.begin(), rep.end());
  EXPECT_EQ(uniq.size(), 10u);
}

TEST(SubsetSelect, GreedyPrefixesNested) {
  const linalg::Matrix a = random_matrix(25, 15, 26);
  const SubsetSelector sel(a, linalg::gram(a));
  const auto r5 = sel.select_greedy(5);
  const auto r9 = sel.select_greedy(9);
  for (std::size_t i = 0; i < 5; ++i) EXPECT_EQ(r5[i], r9[i]);
}

TEST(SubsetSelect, GreedyNeedsGramRoute) {
  const SubsetSelector sel(random_matrix(10, 6, 27));
  EXPECT_THROW((void)sel.select_greedy(3), std::logic_error);
}

TEST(SubsetSelect, GreedyErrorComparableToAlg2) {
  // Greedy is a different heuristic but must be in the same quality class.
  const linalg::Matrix a = low_rank(60, 40, 10, 28);
  const linalg::Matrix w = linalg::gram(a);
  const SubsetSelector sel(a, w);
  for (std::size_t r : {4u, 8u}) {
    const auto e_alg2 =
        selection_errors_from_gram(w, sel.select(r), 1000.0, 3.0);
    const auto e_greedy =
        selection_errors_from_gram(w, sel.select_greedy(r), 1000.0, 3.0);
    EXPECT_LT(e_greedy.eps_r, 5.0 * e_alg2.eps_r + 1e-6);
  }
}

TEST(SubsetSelect, SelectMemoizesPerR) {
  // Bisection probes revisit candidate sizes; repeated select(r) must not
  // rerun the QR column pivoting (regression for the per-probe waste).
  const linalg::Matrix a = random_matrix(22, 14, 30);
  const SubsetSelector sel(a);
  const bool was_enabled = util::telemetry::enabled();
  util::telemetry::set_enabled(true);
  util::telemetry::reset();
  const auto first = sel.select(6);
  const std::uint64_t after_first = counter_value("linalg.qr_colpivot.calls");
  EXPECT_EQ(after_first, 1u);
  const auto again = sel.select(6);
  EXPECT_EQ(counter_value("linalg.qr_colpivot.calls"), after_first);
  EXPECT_EQ(again, first);
  (void)sel.select(4);  // a new r pays exactly one more factorization
  EXPECT_EQ(counter_value("linalg.qr_colpivot.calls"), after_first + 1);
  (void)sel.select(6);  // the old memo entry survives
  EXPECT_EQ(counter_value("linalg.qr_colpivot.calls"), after_first + 1);
  util::telemetry::reset();
  util::telemetry::set_enabled(was_enabled);
}

TEST(SubsetSelect, GreedyOrderFromExternalGram) {
  // SVD-route selector (no retained Gram): greedy_order must factor the
  // caller-supplied Gram and match the pivoted-Cholesky order directly.
  const linalg::Matrix a = random_matrix(18, 10, 31);
  const linalg::Matrix w = linalg::gram(a);
  const SubsetSelector sel(a);  // SVD route
  const std::vector<int>& order = sel.greedy_order(w);
  EXPECT_EQ(order.size(), 18u);
  const linalg::PivotedChol pc = linalg::pivoted_cholesky(w);
  for (std::size_t k = 0; k < pc.rank; ++k) EXPECT_EQ(order[k], pc.perm[k]);
  // Cached: the second call returns the same object.
  EXPECT_EQ(&sel.greedy_order(w), &order);
  // A mis-sized Gram is rejected.
  EXPECT_THROW((void)SubsetSelector(a).greedy_order(linalg::Matrix(4, 4)),
               std::invalid_argument);
}

TEST(SubsetSelect, GreedyOrderMatchesGramRoute) {
  // Gram-route selectors answer from their retained copy; both routes must
  // produce the same order for the same W.
  const linalg::Matrix a = random_matrix(20, 24, 32);
  const linalg::Matrix w = linalg::gram(a);
  const SubsetSelector via_gram(a, w);
  const SubsetSelector via_svd(a);
  EXPECT_EQ(via_gram.greedy_order(w), via_svd.greedy_order(w));
}

TEST(SubsetSelect, ReuseExistingSvd) {
  const linalg::Matrix a = random_matrix(15, 9, 8);
  linalg::SvdResult f = linalg::svd(a);
  const SubsetSelector from_svd(std::move(f), a.rows(), a.cols());
  const SubsetSelector direct(a);
  EXPECT_EQ(from_svd.rank(), direct.rank());
  EXPECT_EQ(from_svd.select(4), direct.select(4));
}

}  // namespace
}  // namespace repro::core
